package mr

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/iokit"
)

// mapPathInput is sized to force several spills under a tiny sort
// buffer, so the A/B runs exercise bucketing, parallel run writes, and
// the per-partition final merges — not just the single-spill shortcut.
func mapPathInput() []Split {
	return lines(
		strings.Repeat("alpha beta gamma delta epsilon ", 120),
		strings.Repeat("beta beta zeta eta theta ", 150),
		strings.Repeat("gamma iota kappa alpha ", 90),
		strings.Repeat("lambda mu nu xi omicron pi ", 110),
		strings.Repeat("alpha omega ", 200),
	)
}

// assertSameRun asserts two results carry byte-identical sorted output,
// identical logical counters, and identical per-partition shuffle flows.
func assertSameRun(t *testing.T, aName string, a *Result, bName string, b *Result) {
	t.Helper()
	ra, rb := a.SortedOutput(), b.SortedOutput()
	if len(ra) != len(rb) {
		t.Fatalf("output length differs: %s %d, %s %d", aName, len(ra), bName, len(rb))
	}
	for i := range ra {
		if !bytes.Equal(ra[i].Key, rb[i].Key) || !bytes.Equal(ra[i].Value, rb[i].Value) {
			t.Fatalf("record %d differs: %s %q=%q, %s %q=%q",
				i, aName, ra[i].Key, ra[i].Value, bName, rb[i].Key, rb[i].Value)
		}
	}
	sa, sb := a.Stats, b.Stats
	if sa.MapInputRecords != sb.MapInputRecords ||
		sa.MapOutputRecords != sb.MapOutputRecords ||
		sa.MapOutputBytes != sb.MapOutputBytes ||
		sa.Spills != sb.Spills ||
		sa.ShuffleBytes != sb.ShuffleBytes ||
		sa.ReduceInputRecords != sb.ReduceInputRecords ||
		sa.ReduceOutputRecords != sb.ReduceOutputRecords {
		t.Errorf("logical counters differ:\n%s: %+v\n%s: %+v", aName, sa, bName, sb)
	}
	if fmt.Sprint(a.ShufflePerPartition) != fmt.Sprint(b.ShufflePerPartition) {
		t.Errorf("per-partition flows differ: %v vs %v",
			a.ShufflePerPartition, b.ShufflePerPartition)
	}
}

// TestMapPathEquivalence is the A/B harness for the map-path overhaul:
// across codecs, transports, spill pressure, and combiner settings, the
// historical sequential/unpooled configuration (SpillParallelism=1,
// DisablePooling) and the new default (bucketed sort, pooled buffers,
// parallel spill/merge) must produce byte-identical sorted output and
// identical logical counters.
func TestMapPathEquivalence(t *testing.T) {
	input := mapPathInput()
	for _, cc := range []struct {
		name string
		c    codec.Codec
	}{{"identity", nil}, {"snappy", codec.Snappy{}}} {
		for _, tcp := range []bool{false, true} {
			for _, tinyBuf := range []bool{false, true} {
				for _, combiner := range []bool{false, true} {
					name := fmt.Sprintf("%s/tcp=%v/tiny=%v/combiner=%v", cc.name, tcp, tinyBuf, combiner)
					t.Run(name, func(t *testing.T) {
						mk := func(sequential bool) *Job {
							job := wordCountJob(combiner)
							job.Codec = cc.c
							job.TCPShuffle = tcp
							if tinyBuf {
								job.SortBufferBytes = 1 << 10
							}
							if sequential {
								job.SpillParallelism = 1
								job.DisablePooling = true
							}
							return job
						}
						base, err := Run(mk(true), input)
						if err != nil {
							t.Fatalf("sequential baseline: %v", err)
						}
						fast, err := Run(mk(false), input)
						if err != nil {
							t.Fatalf("parallel pooled: %v", err)
						}
						assertSameRun(t, "sequential", base, "parallel", fast)
					})
				}
			}
		}
	}
}

// TestMapPathEquivalenceCustomComparator covers the non-raw-key-order
// sort path: a custom (reverse) comparator must disable the inlined
// bytes.Compare fast path on both sides and still produce identical
// output.
func TestMapPathEquivalenceCustomComparator(t *testing.T) {
	input := mapPathInput()
	mk := func(sequential bool) *Job {
		job := wordCountJob(true)
		job.KeyCompare = func(a, b []byte) int { return bytes.Compare(b, a) }
		job.SortBufferBytes = 1 << 10
		if sequential {
			job.SpillParallelism = 1
			job.DisablePooling = true
		}
		return job
	}
	base, err := Run(mk(true), input)
	if err != nil {
		t.Fatalf("sequential baseline: %v", err)
	}
	fast, err := Run(mk(false), input)
	if err != nil {
		t.Fatalf("parallel pooled: %v", err)
	}
	assertSameRun(t, "sequential", base, "parallel", fast)
}

// TestMapPathEquivalenceMultiPass forces multi-pass merges (tiny sort
// buffer, MergeFactor 2) so the smallest-first pass policy runs under
// both configurations.
func TestMapPathEquivalenceMultiPass(t *testing.T) {
	input := mapPathInput()
	mk := func(sequential bool) *Job {
		job := wordCountJob(true)
		job.SortBufferBytes = 1 << 10
		job.MergeFactor = 2
		if sequential {
			job.SpillParallelism = 1
			job.DisablePooling = true
		}
		return job
	}
	base, err := Run(mk(true), input)
	if err != nil {
		t.Fatalf("sequential baseline: %v", err)
	}
	fast, err := Run(mk(false), input)
	if err != nil {
		t.Fatalf("parallel pooled: %v", err)
	}
	assertSameRun(t, "sequential", base, "parallel", fast)
}

// TestMapPathParallelRace stresses the concurrent paths for the race
// detector: multiple jobs run at once, each with parallel map tasks,
// parallel spill/merge workers, and shared buffer pools, on one shared
// filesystem.
func TestMapPathParallelRace(t *testing.T) {
	input := mapPathInput()
	fs := iokit.NewMemFS()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	results := make([]*Result, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := wordCountJob(true)
			job.Name = fmt.Sprintf("race%d", i)
			job.FS = fs
			job.SortBufferBytes = 1 << 10
			job.Parallelism = 4
			job.SpillParallelism = 4
			results[i], errs[i] = Run(job, input)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	for i := 1; i < len(results); i++ {
		assertSameRun(t, "job0", results[0], fmt.Sprintf("job%d", i), results[i])
	}
}

// TestMultiPassMergeSmallestFirst pins the Hadoop merge policy: when a
// multi-pass merge is forced, each intermediate pass must consume the
// smallest candidate segments, not the first K in slice order. The
// metered filesystem proves it — with large segments listed first, the
// bytes re-read by the merge shrink strictly versus the first-K
// batching, and match the smallest-first simulation exactly.
func TestMultiPassMergeSmallestFirst(t *testing.T) {
	mem := iokit.NewMemFS()
	meter := &iokit.Meter{}
	fs := iokit.Metered(mem, meter)
	job := wordCountJob(false)
	job.MergeFactor = 3
	// Checksum framing off: the simulation below assumes an
	// intermediate's file size is exactly the sum of its inputs, which
	// only holds for the raw identity-codec layout.
	job.DisableChecksums = true
	j, err := job.normalized()
	if err != nil {
		t.Fatal(err)
	}

	// Seven segments, biggest first, with one shared key range so the
	// merged output interleaves. Identity codec: file size == framed
	// bytes, and an intermediate's size is exactly the sum of its inputs.
	recCounts := []int{100, 80, 60, 1, 1, 1, 1}
	segs := make([]segment, len(recCounts))
	var wantRecords int64
	for i, n := range recCounts {
		name := fmt.Sprintf("seg%02d", i)
		seg, err := writeTestSegment(j, fs, name, 0, i, n)
		if err != nil {
			t.Fatal(err)
		}
		segs[i] = seg
		wantRecords += int64(n)
	}
	sizes := make([]int64, len(segs))
	for i, s := range segs {
		if sizes[i], err = fs.Size(s.file); err != nil {
			t.Fatal(err)
		}
	}

	// Simulate both batching policies over the real file sizes.
	firstK := simulateMergeReads(sizes, j.MergeFactor, false)
	smallest := simulateMergeReads(sizes, j.MergeFactor, true)
	if smallest >= firstK {
		t.Fatalf("test fixture does not separate policies: smallest-first %d, first-K %d", smallest, firstK)
	}

	meter.Reset()
	counters := &Counters{}
	merged, err := mergeSegments(j, fs, counters, "merged", 0, segs, false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if merged.records != wantRecords {
		t.Fatalf("merged %d records, want %d", merged.records, wantRecords)
	}
	if got := meter.ReadBytes(); got != smallest {
		t.Errorf("merge read %d bytes, want smallest-first total %d (first-K would read %d)",
			got, smallest, firstK)
	}
	if got := meter.ReadBytes(); got >= firstK {
		t.Errorf("merge read %d bytes, not below the first-K policy's %d", got, firstK)
	}

	// Intermediate pass files are internal: none may survive the merge.
	files, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.Contains(f, ".pass") {
			t.Errorf("orphaned intermediate file %s", f)
		}
	}
}

// writeTestSegment writes n framed records with segment-unique keys and
// returns its segment descriptor. It goes through the real segment sink
// so the file carries whatever layering (checksums, codec) the job is
// configured with.
func writeTestSegment(job *Job, fs iokit.FS, name string, partition, id, n int) (segment, error) {
	sink, err := newSegmentSink(job, fs, name)
	if err != nil {
		return segment{}, err
	}
	var werr error
	for i := 0; i < n; i++ {
		// Keys sort within the segment and interleave across segments.
		k := []byte(fmt.Sprintf("k%06d.%02d", i, id))
		if werr = sink.w.WriteRecord(k, []byte("v")); werr != nil {
			break
		}
	}
	records, rawBytes, err := sink.close(job, werr)
	if err != nil {
		removeQuiet(fs, name)
		return segment{}, err
	}
	return segment{partition: partition, file: name, records: records, rawBytes: rawBytes}, nil
}

// simulateMergeReads predicts the total bytes a multi-pass merge reads
// from disk given segment sizes, the merge factor, and the batching
// policy (first K in order, or smallest K first). With the identity
// codec an intermediate's size is the sum of its inputs.
func simulateMergeReads(sizes []int64, factor int, smallestFirst bool) int64 {
	segs := append([]int64(nil), sizes...)
	var read int64
	for len(segs) > factor {
		if smallestFirst {
			for i := 1; i < len(segs); i++ { // insertion sort: sizes are few
				for j := i; j > 0 && segs[j] < segs[j-1]; j-- {
					segs[j], segs[j-1] = segs[j-1], segs[j]
				}
			}
		}
		var inter int64
		for _, s := range segs[:factor] {
			inter += s
		}
		read += inter
		segs = append(segs[factor:], inter)
	}
	for _, s := range segs {
		read += s
	}
	return read
}
