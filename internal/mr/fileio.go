package mr

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/bytesx"
	"repro/internal/iokit"
)

// LineSplit streams newline-separated records from a file: each line
// becomes a (nil, line) record, like Hadoop's TextInputFormat (minus
// byte offsets as keys, which no workload here uses).
type LineSplit struct {
	FS   iokit.FS
	Name string
}

// Records implements Split.
func (s *LineSplit) Records(fn func(key, value []byte) error) error {
	f, err := s.FS.Open(s.Name)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		if err := fn(nil, sc.Bytes()); err != nil {
			return err
		}
	}
	return sc.Err()
}

// RecordFileSplit streams length-framed (key, value) records written by
// WriteRecordFile, the engine's SequenceFile analogue.
type RecordFileSplit struct {
	FS   iokit.FS
	Name string
}

// Records implements Split.
func (s *RecordFileSplit) Records(fn func(key, value []byte) error) error {
	f, err := s.FS.Open(s.Name)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bytesx.NewReader(f)
	for {
		k, v, err := r.ReadRecord()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
}

// WriteRecordFile writes records as a framed record file readable by
// RecordFileSplit.
func WriteRecordFile(fs iokit.FS, name string, recs []Record) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	w := bytesx.NewWriter(f)
	for _, r := range recs {
		if err := w.WriteRecord(r.Key, r.Value); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteLines writes newline-separated text readable by LineSplit.
func WriteLines(fs iokit.FS, name string, lines []string) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, l := range lines {
		if _, err := w.WriteString(l); err != nil {
			f.Close()
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteOutput persists a job result as one framed record file per reduce
// partition ("<prefix>/part-0000N"), returning the file names.
func WriteOutput(fs iokit.FS, prefix string, res *Result) ([]string, error) {
	names := make([]string, len(res.Output))
	for p, recs := range res.Output {
		name := fmt.Sprintf("%s/part-%05d", prefix, p)
		if err := WriteRecordFile(fs, name, recs); err != nil {
			return nil, err
		}
		names[p] = name
	}
	return names, nil
}

// FileSplits builds one split per file name, auto-detecting nothing:
// framed=true uses RecordFileSplit, otherwise LineSplit.
func FileSplits(fs iokit.FS, names []string, framed bool) []Split {
	splits := make([]Split, len(names))
	for i, n := range names {
		if framed {
			splits[i] = &RecordFileSplit{FS: fs, Name: n}
		} else {
			splits[i] = &LineSplit{FS: fs, Name: n}
		}
	}
	return splits
}

// Iterate runs an iterative dataflow: build constructs the (possibly
// wrapped) job for each round, and each round consumes the previous
// round's output records. It returns the final result and the summed
// stats of all rounds — the driver pattern PageRank-style jobs need.
func Iterate(rounds int, initial []Record, splitsPer int, build func(round int) *Job) (*Result, Stats, error) {
	var total Stats
	recs := initial
	var res *Result
	for round := 0; round < rounds; round++ {
		var err error
		res, err = Run(build(round), SplitRecords(recs, splitsPer))
		if err != nil {
			return nil, total, fmt.Errorf("mr: iteration %d: %w", round, err)
		}
		addStats(&total, res.Stats)
		recs = res.SortedOutput()
	}
	return res, total, nil
}

func addStats(dst *Stats, s Stats) {
	dst.MapInputRecords += s.MapInputRecords
	dst.MapOutputRecords += s.MapOutputRecords
	dst.MapOutputBytes += s.MapOutputBytes
	dst.ShuffleBytes += s.ShuffleBytes
	dst.Spills += s.Spills
	dst.CombineInputRecords += s.CombineInputRecords
	dst.CombineOutputRecords += s.CombineOutputRecords
	dst.ReduceInputRecords += s.ReduceInputRecords
	dst.ReduceOutputRecords += s.ReduceOutputRecords
	dst.DiskReadBytes += s.DiskReadBytes
	dst.DiskWriteBytes += s.DiskWriteBytes
	dst.MapCPU += s.MapCPU
	dst.ReduceCPU += s.ReduceCPU
	dst.WallTime += s.WallTime
	if dst.Extra == nil {
		dst.Extra = map[string]int64{}
	}
	for k, v := range s.Extra {
		dst.Extra[k] += v
	}
}
