package mr

import (
	"io"
	"sync"

	"repro/internal/bytesx"
)

// Steady-state buffer pools for the map-output hot path. A map task's
// lifetime churns through a collect arena, entry index slices, one
// framed-record writer per spill run, one framed-record reader per
// opened segment, and one copy buffer per shuffle fetch; pooling them
// makes a steady-state task allocate O(1) per spill instead of
// O(records). Pools never affect output bytes — they only recycle
// scratch memory — and Job.DisablePooling opts a job out entirely (the
// A/B baseline). The transport frame pool below is job-independent:
// wire frames are internal scratch that is copied out before release.

var (
	arenaPool   sync.Pool // *[]byte, collect arenas (cap ~SortBufferBytes)
	entriesPool sync.Pool // *[]bufEntry, collect/bucket index slices
	writerPool  sync.Pool // *bytesx.Writer, spill/merge run writers
	readerPool  sync.Pool // *bytesx.Reader, segment readers
	copyBufPool sync.Pool // *[]byte, fixed-size shuffle copy buffers
)

// copyBufSize is the pooled shuffle copy-buffer size, matching the
// record streams' 64 KiB buffering.
const copyBufSize = 64 << 10

func getArena(job *Job) []byte {
	if job.DisablePooling {
		return nil
	}
	if p, ok := arenaPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return nil
}

func putArena(job *Job, b []byte) {
	if job.DisablePooling || cap(b) == 0 {
		return
	}
	b = b[:0]
	arenaPool.Put(&b)
}

func getEntries(job *Job) []bufEntry {
	if job.DisablePooling {
		return nil
	}
	if p, ok := entriesPool.Get().(*[]bufEntry); ok {
		return (*p)[:0]
	}
	return nil
}

func putEntries(job *Job, e []bufEntry) {
	if job.DisablePooling || cap(e) == 0 {
		return
	}
	e = e[:0]
	entriesPool.Put(&e)
}

// getRecordWriter returns a framed-record writer over w, pooled unless
// the job disabled pooling. Callers must putRecordWriter it back after
// reading Records()/Bytes() and before the data is reused.
func getRecordWriter(job *Job, w io.Writer) *bytesx.Writer {
	if !job.DisablePooling {
		if rw, ok := writerPool.Get().(*bytesx.Writer); ok {
			rw.Reset(w)
			return rw
		}
	}
	return bytesx.NewWriter(w)
}

func putRecordWriter(job *Job, rw *bytesx.Writer) {
	if job.DisablePooling {
		return
	}
	rw.Reset(nil)
	writerPool.Put(rw)
}

func getRecordReader(job *Job, r io.Reader) *bytesx.Reader {
	if !job.DisablePooling {
		if rr, ok := readerPool.Get().(*bytesx.Reader); ok {
			rr.Reset(r)
			return rr
		}
	}
	return bytesx.NewReader(r)
}

func putRecordReader(job *Job, rr *bytesx.Reader) {
	if job.DisablePooling {
		return
	}
	rr.Reset(nil)
	readerPool.Put(rr)
}

// getCopyBuf returns a 64 KiB scratch buffer for io.CopyBuffer on the
// shuffle fetch path. job may be nil (job-independent callers).
func getCopyBuf(job *Job) []byte {
	if job != nil && job.DisablePooling {
		return make([]byte, copyBufSize)
	}
	if p, ok := copyBufPool.Get().(*[]byte); ok {
		return *p
	}
	return make([]byte, copyBufSize)
}

func putCopyBuf(job *Job, b []byte) {
	if (job != nil && job.DisablePooling) || cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	copyBufPool.Put(&b)
}

// frameBufPool recycles the transport's length-prefixed frame buffers
// (request names, error strings) so every fetch handshake stops paying
// a per-frame allocation. Frames are small (≤ maxErrFrame) and their
// contents are always copied into a string before release.
var frameBufPool sync.Pool // *[]byte

func getFrameBuf(n int) []byte {
	if p, ok := frameBufPool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

func putFrameBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	frameBufPool.Put(&b)
}
