package mr

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/codec"
)

// TestFullPipelineMatrix drives the engine end-to-end across transports,
// codecs, and buffer pressure simultaneously, checking results against a
// single uncompressed local baseline. This is the engine's widest
// configuration sweep; the anticombine package runs the analogous sweep
// with the transformation applied on top.
func TestFullPipelineMatrix(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "word%03d common ", i*37%90)
	}
	input := lines(sb.String(), sb.String(), "extra words common here")

	baseline, err := Run(wordCountJob(true), input)
	if err != nil {
		t.Fatal(err)
	}
	want := outputMap(t, baseline)

	for _, codecName := range []string{"none", "gzip", "snappy", "bwsc"} {
		for _, tcp := range []bool{false, true} {
			for _, tinyBuf := range []bool{false, true} {
				name := fmt.Sprintf("%s/tcp=%v/tiny=%v", codecName, tcp, tinyBuf)
				t.Run(name, func(t *testing.T) {
					c, err := codec.ByName(codecName)
					if err != nil {
						t.Fatal(err)
					}
					job := wordCountJob(true)
					job.Codec = c
					job.TCPShuffle = tcp
					if tinyBuf {
						job.SortBufferBytes = 512
						job.MergeFactor = 2
					}
					res, err := Run(job, input)
					if err != nil {
						t.Fatal(err)
					}
					got := outputMap(t, res)
					if len(got) != len(want) {
						t.Fatalf("key count %d != %d", len(got), len(want))
					}
					for k, v := range want {
						if got[k] != v {
							t.Errorf("%q = %q, want %q", k, got[k], v)
						}
					}
				})
			}
		}
	}
}
