package mr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/iokit"
)

// Transport is how reduce tasks fetch map output segments. The default
// LocalTransport reads them straight from the task filesystem (the
// single-process analogue of a local fetch); TCPTransport serves them
// over a real localhost socket, exercising a genuine network path like
// Hadoop's shuffle ServletFetcher.
type Transport interface {
	// Fetch opens a segment for reading and reports its transfer size.
	Fetch(fs iokit.FS, name string) (io.ReadCloser, int64, error)
	// Close releases transport resources after the job completes.
	Close() error
}

// LocalTransport fetches segments directly from the filesystem.
type LocalTransport struct{}

// Fetch implements Transport.
func (LocalTransport) Fetch(fs iokit.FS, name string) (io.ReadCloser, int64, error) {
	size, err := fs.Size(name)
	if err != nil {
		return nil, 0, err
	}
	r, err := fs.Open(name)
	if err != nil {
		return nil, 0, err
	}
	return r, size, nil
}

// Close implements Transport.
func (LocalTransport) Close() error { return nil }

// TCPTransport serves segment files over a loopback TCP listener and
// fetches them through real sockets. Protocol per connection: the
// client sends a uvarint-length-prefixed file name; the server replies
// with a uvarint byte count followed by the file contents, or a zero
// count and a length-prefixed error string.
type TCPTransport struct {
	fs iokit.FS
	ln net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewTCPTransport starts a loopback listener serving fs.
func NewTCPTransport(fs iokit.FS) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{fs: fs, ln: ln}
	t.wg.Add(1)
	go t.serve()
	return t, nil
}

// Addr reports the listener address (tests and diagnostics).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) serve() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			t.handle(conn)
		}()
	}
}

func (t *TCPTransport) handle(conn net.Conn) {
	name, err := readLenPrefixed(conn)
	if err != nil {
		return
	}
	size, err := t.fs.Size(string(name))
	if err != nil {
		writeError(conn, err)
		return
	}
	f, err := t.fs.Open(string(name))
	if err != nil {
		writeError(conn, err)
		return
	}
	defer f.Close()
	hdr := binary.AppendUvarint(nil, uint64(size)+1) // size+1: 0 means error
	if _, err := conn.Write(hdr); err != nil {
		return
	}
	io.CopyN(conn, f, size)
}

func writeError(conn net.Conn, err error) {
	buf := binary.AppendUvarint(nil, 0)
	buf = binary.AppendUvarint(buf, uint64(len(err.Error())))
	buf = append(buf, err.Error()...)
	conn.Write(buf)
}

func readLenPrefixed(r io.Reader) ([]byte, error) {
	br := &byteReader{r: r}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, errors.New("mr: transport frame too large")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// Fetch retry policy: connection-level failures (dial errors, a peer
// dropping the connection before the response header arrives) are
// retried a bounded number of times with exponential backoff, like
// Hadoop's fetch retries. Server-reported errors (e.g. a missing
// segment) are authoritative and fail immediately.
const (
	fetchAttempts     = 3
	fetchRetryBackoff = 2 * time.Millisecond
)

// Fetch implements Transport: it dials the loopback server and streams
// the segment over the socket, retrying connection-level failures.
func (t *TCPTransport) Fetch(_ iokit.FS, name string) (io.ReadCloser, int64, error) {
	var lastErr error
	for attempt := 0; attempt < fetchAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(fetchRetryBackoff << (attempt - 1))
		}
		rc, size, err, retryable := t.fetchOnce(name)
		if err == nil {
			return rc, size, nil
		}
		if !retryable {
			return nil, 0, err
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("mr: shuffle fetch %s failed after %d attempts: %w",
		name, fetchAttempts, lastErr)
}

// fetchOnce performs a single fetch handshake. retryable reports
// whether the failure happened at the connection level (before a valid
// response header), where a retry may see a healthy connection.
func (t *TCPTransport) fetchOnce(name string) (rc io.ReadCloser, size int64, err error, retryable bool) {
	conn, err := net.Dial("tcp", t.ln.Addr().String())
	if err != nil {
		return nil, 0, err, true
	}
	req := binary.AppendUvarint(nil, uint64(len(name)))
	req = append(req, name...)
	if _, err := conn.Write(req); err != nil {
		conn.Close()
		return nil, 0, err, true
	}
	br := &byteReader{r: conn}
	sizePlus, err := binary.ReadUvarint(br)
	if err != nil {
		conn.Close()
		return nil, 0, err, true
	}
	if sizePlus == 0 {
		msg, err := readLenPrefixed(conn)
		conn.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("mr: shuffle fetch failed: %w", err), true
		}
		return nil, 0, fmt.Errorf("mr: shuffle fetch %s: %s", name, msg), false
	}
	size = int64(sizePlus - 1)
	return &fetchReader{conn: conn, remaining: size}, size, nil, false
}

type fetchReader struct {
	conn      net.Conn
	remaining int64
}

func (f *fetchReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.conn.Read(p)
	f.remaining -= int64(n)
	if err == nil && f.remaining == 0 {
		return n, nil
	}
	return n, err
}

func (f *fetchReader) Close() error { return f.conn.Close() }

// Close implements Transport: stops the listener and waits for in-flight
// connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
