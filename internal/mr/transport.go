package mr

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iokit"
)

// Transport is how reduce tasks fetch map output segments. The default
// LocalTransport reads them straight from the task filesystem (the
// single-process analogue of a local fetch); TCPTransport serves them
// over a real socket, exercising a genuine network path like Hadoop's
// shuffle ServletFetcher. Fetch honors ctx: cancelling it aborts an
// in-flight transfer, not just the gap between transfers.
type Transport interface {
	// Fetch opens a segment for reading and reports its transfer size.
	Fetch(ctx context.Context, fs iokit.FS, name string) (io.ReadCloser, int64, error)
	// Close releases transport resources after the job completes.
	Close() error
}

// LocalTransport fetches segments directly from the filesystem.
type LocalTransport struct{}

// Fetch implements Transport.
func (LocalTransport) Fetch(ctx context.Context, fs iokit.FS, name string) (io.ReadCloser, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	size, err := fs.Size(name)
	if err != nil {
		return nil, 0, err
	}
	r, err := fs.Open(name)
	if err != nil {
		return nil, 0, err
	}
	return r, size, nil
}

// Close implements Transport.
func (LocalTransport) Close() error { return nil }

// Wire protocol frame limits. Request frames carry file names; error
// frames carry error strings. Anything larger is rejected before
// allocation so a corrupt or hostile peer cannot force large buffers.
const (
	maxNameFrame = 4 << 10
	maxErrFrame  = 64 << 10
)

// SegmentServer serves segment files from an FS over TCP, speaking a
// persistent length-prefixed protocol: the client sends a
// uvarint-length-prefixed file name; the server replies with a uvarint
// byte count (size+1, so 0 signals an error) followed by the file
// contents, or a zero count and a length-prefixed error string. The
// connection then returns to a clean frame boundary and the client may
// issue the next request on it, which is what makes connection pooling
// possible. It is the addressable generalization of the loopback-only
// shuffle server: cluster workers bind it on a routable address and
// peer workers fetch from it directly.
type SegmentServer struct {
	fs    iokit.FS
	meter *iokit.Meter // optional: meters serve-side disk reads
	ln    net.Listener

	served atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewSegmentServer starts a listener on addr (e.g. "127.0.0.1:0")
// serving fs. meter, when non-nil, receives the serve-side disk reads —
// useful when fs itself is unmetered (the cluster worker's base FS).
func NewSegmentServer(fs iokit.FS, addr string, meter *iokit.Meter) (*SegmentServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewSegmentServerOn(fs, ln, meter), nil
}

// NewSegmentServerOn serves fs on an already-bound listener — the hook
// that lets cluster workers and the chaos harness interpose on the data
// plane (e.g. a fault-injecting listener wrapper) before serving starts.
func NewSegmentServerOn(fs iokit.FS, ln net.Listener, meter *iokit.Meter) *SegmentServer {
	s := &SegmentServer{fs: fs, meter: meter, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.serve()
	return s
}

// Addr reports the listener address, in a form peers can dial.
func (s *SegmentServer) Addr() string { return s.ln.Addr().String() }

// ServedBytes reports the total payload bytes written to clients.
func (s *SegmentServer) ServedBytes() int64 { return s.served.Load() }

func (s *SegmentServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// handleConn serves requests on one persistent connection until the
// client closes it or a frame is malformed.
func (s *SegmentServer) handleConn(conn net.Conn) {
	for {
		nameBuf, err := readLenPrefixed(conn, maxNameFrame)
		if err != nil {
			return // client done (EOF) or bad frame
		}
		name := string(nameBuf)
		putFrameBuf(nameBuf)
		if !s.handleOne(conn, name) {
			return
		}
	}
}

// handleOne answers a single request; it reports whether the connection
// is still at a clean frame boundary and may serve another.
func (s *SegmentServer) handleOne(conn net.Conn, name string) bool {
	size, err := s.fs.Size(name)
	if err != nil {
		return writeError(conn, err)
	}
	f, err := s.fs.Open(name)
	if err != nil {
		return writeError(conn, err)
	}
	defer f.Close()
	var r io.Reader = f
	if s.meter != nil {
		r = &iokit.CountingReader{R: f, M: s.meter}
	}
	hdr := binary.AppendUvarint(nil, uint64(size)+1) // size+1: 0 means error
	if _, err := conn.Write(hdr); err != nil {
		return false
	}
	n, err := io.CopyN(conn, r, size)
	s.served.Add(n)
	return err == nil
}

// Close stops the listener, severs live connections — remote clients
// may hold pooled sockets open indefinitely, and a clean shutdown must
// not wait on them — and waits for handler goroutines to drain.
func (s *SegmentServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func writeError(conn net.Conn, err error) bool {
	msg := err.Error()
	if len(msg) > maxErrFrame {
		msg = msg[:maxErrFrame]
	}
	buf := binary.AppendUvarint(nil, 0)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	_, werr := conn.Write(buf)
	return werr == nil
}

// readLenPrefixed reads one uvarint-length-prefixed frame, rejecting
// frames larger than max before allocating, so truncated or hostile
// length prefixes cannot force oversized buffers.
func readLenPrefixed(r io.Reader, max uint64) ([]byte, error) {
	br := &byteReader{r: r}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > max {
		return nil, fmt.Errorf("mr: transport frame of %d bytes exceeds limit %d", n, max)
	}
	buf := getFrameBuf(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		putFrameBuf(buf)
		return nil, err
	}
	return buf, nil
}

type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// Fetch retry policy: connection-level failures (dial errors, a peer
// dropping the connection before the response header arrives) are
// retried a bounded number of times with exponential backoff, like
// Hadoop's fetch retries. Server-reported errors (e.g. a missing
// segment) are authoritative and fail immediately.
const (
	fetchAttempts     = 3
	fetchRetryBackoff = 2 * time.Millisecond
)

// ConnPool is a keyed client-connection pool for the segment protocol:
// connections are pooled per server address with keep-alive, a fetch
// whose body is fully consumed returns its connection for reuse, and
// idle connections past IdleTimeout are discarded on next use. Pooling
// matters on multi-reduce jobs: without it every (partition, map task)
// segment fetch pays a fresh TCP dial to the same few servers.
type ConnPool struct {
	// IdleTimeout discards pooled connections idle longer than this.
	// Defaults to 30s.
	IdleTimeout time.Duration
	// MaxIdlePerHost caps pooled connections per server address.
	// Defaults to 8.
	MaxIdlePerHost int

	dials atomic.Int64

	mu     sync.Mutex
	idle   map[string][]pooledConn
	closed bool
}

type pooledConn struct {
	conn   net.Conn
	parked time.Time
}

// NewConnPool returns an empty pool with default limits.
func NewConnPool() *ConnPool {
	return &ConnPool{idle: make(map[string][]pooledConn)}
}

// Dials reports how many TCP dials the pool has performed — the pool's
// miss count. A multi-reduce job with pooling performs far fewer dials
// than it performs fetches.
func (p *ConnPool) Dials() int64 { return p.dials.Load() }

func (p *ConnPool) idleTimeout() time.Duration {
	if p.IdleTimeout > 0 {
		return p.IdleTimeout
	}
	return 30 * time.Second
}

func (p *ConnPool) maxIdle() int {
	if p.MaxIdlePerHost > 0 {
		return p.MaxIdlePerHost
	}
	return 8
}

// get returns a pooled connection to addr, or dials a fresh one. fresh
// forces a dial (used after a pooled connection turned out stale).
func (p *ConnPool) get(ctx context.Context, addr string, fresh bool) (net.Conn, error) {
	if !fresh {
		cutoff := time.Now().Add(-p.idleTimeout())
		p.mu.Lock()
		conns := p.idle[addr]
		for len(conns) > 0 {
			pc := conns[len(conns)-1]
			conns = conns[:len(conns)-1]
			p.idle[addr] = conns
			if pc.parked.Before(cutoff) {
				pc.conn.Close()
				continue
			}
			p.mu.Unlock()
			return pc.conn, nil
		}
		p.mu.Unlock()
	}
	p.dials.Add(1)
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// put parks a connection for reuse; the caller asserts it sits at a
// clean frame boundary.
func (p *ConnPool) put(addr string, conn net.Conn) {
	p.mu.Lock()
	if p.closed || len(p.idle[addr]) >= p.maxIdle() {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], pooledConn{conn: conn, parked: time.Now()})
	p.mu.Unlock()
}

// Close discards all pooled connections. In-flight fetches keep their
// connections and close them individually.
func (p *ConnPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for addr, conns := range p.idle {
		for _, pc := range conns {
			pc.conn.Close()
		}
		delete(p.idle, addr)
	}
	return nil
}

// Fetch requests one segment from the server at addr and streams its
// body, retrying connection-level failures with backoff. Cancelling ctx
// closes the in-flight connection, so a fetch that lost a speculative
// race or belongs to a cancelled job aborts mid-transfer instead of
// running to completion.
func (p *ConnPool) Fetch(ctx context.Context, addr, name string) (io.ReadCloser, int64, error) {
	var lastErr error
	for attempt := 0; attempt < fetchAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(fetchRetryBackoff << (attempt - 1)):
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		// Attempt 0 may reuse a pooled connection; if that fails at the
		// connection level it was likely stale, so later attempts dial
		// fresh.
		rc, size, err, retryable := p.fetchOnce(ctx, addr, name, attempt > 0)
		if err == nil {
			return rc, size, nil
		}
		if !retryable {
			return nil, 0, err
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("mr: shuffle fetch %s from %s failed after %d attempts: %w",
		name, addr, fetchAttempts, lastErr)
}

// fetchOnce performs a single fetch handshake. retryable reports
// whether the failure happened at the connection level (before a valid
// response header), where a retry may see a healthy connection.
func (p *ConnPool) fetchOnce(ctx context.Context, addr, name string, fresh bool) (rc io.ReadCloser, size int64, err error, retryable bool) {
	conn, err := p.get(ctx, addr, fresh)
	if err != nil {
		return nil, 0, err, true
	}
	// While this request is in flight, ctx cancellation closes the
	// connection so blocked reads and writes abort promptly.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	fail := func(err error, retryable bool) (io.ReadCloser, int64, error, bool) {
		stop()
		conn.Close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, 0, cerr, false
		}
		return nil, 0, err, retryable
	}
	req := binary.AppendUvarint(nil, uint64(len(name)))
	req = append(req, name...)
	if _, err := conn.Write(req); err != nil {
		return fail(err, true)
	}
	br := &byteReader{r: conn}
	sizePlus, err := binary.ReadUvarint(br)
	if err != nil {
		return fail(err, true)
	}
	if sizePlus == 0 {
		msg, err := readLenPrefixed(conn, maxErrFrame)
		if err != nil {
			return fail(fmt.Errorf("mr: shuffle fetch failed: %w", err), true)
		}
		// Server-reported errors are authoritative; the connection is at
		// a frame boundary, so it can be reused.
		stop()
		p.put(addr, conn)
		ferr := fmt.Errorf("mr: shuffle fetch %s from %s: %s", name, addr, msg)
		putFrameBuf(msg)
		return nil, 0, ferr, false
	}
	size = int64(sizePlus - 1)
	return &fetchReader{pool: p, addr: addr, conn: conn, ctx: ctx, stop: stop, remaining: size}, size, nil, false
}

// fetchReader streams one fetch body. Closing it after the body is
// fully consumed returns the connection to the pool; closing early (or
// after cancellation) discards it.
type fetchReader struct {
	pool      *ConnPool
	addr      string
	conn      net.Conn
	ctx       context.Context
	stop      func() bool
	remaining int64
	closed    bool
}

func (f *fetchReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.conn.Read(p)
	f.remaining -= int64(n)
	if err != nil {
		// Surface cancellation as the cause when it closed the conn.
		if cerr := f.ctx.Err(); cerr != nil {
			return n, cerr
		}
		return n, err
	}
	return n, nil
}

func (f *fetchReader) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.stop()
	if f.remaining == 0 && f.ctx.Err() == nil {
		f.pool.put(f.addr, f.conn)
		return nil
	}
	return f.conn.Close()
}

// TCPTransport is the single-process shuffle-over-sockets transport: a
// SegmentServer on loopback plus a pooled client fetching from it.
type TCPTransport struct {
	srv  *SegmentServer
	pool *ConnPool
}

// NewTCPTransport starts a loopback listener serving fs.
func NewTCPTransport(fs iokit.FS) (*TCPTransport, error) {
	return newTCPTransport(fs, nil)
}

// newTCPTransport starts the loopback transport, optionally wrapping
// the listener (Job.WrapShuffleListener — the chaos harness's
// data-plane injection point).
func newTCPTransport(fs iokit.FS, wrap func(net.Listener) net.Listener) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if wrap != nil {
		ln = wrap(ln)
	}
	return &TCPTransport{srv: NewSegmentServerOn(fs, ln, nil), pool: NewConnPool()}, nil
}

// Addr reports the listener address (tests and diagnostics).
func (t *TCPTransport) Addr() string { return t.srv.Addr() }

// Dials reports the TCP dials performed by the transport's pool.
func (t *TCPTransport) Dials() int64 { return t.pool.Dials() }

// Fetch implements Transport: it requests the segment from the loopback
// server over a pooled socket.
func (t *TCPTransport) Fetch(ctx context.Context, _ iokit.FS, name string) (io.ReadCloser, int64, error) {
	return t.pool.Fetch(ctx, t.srv.Addr(), name)
}

// Close implements Transport: discards pooled connections, stops the
// listener, and waits for in-flight connections.
func (t *TCPTransport) Close() error {
	t.pool.Close()
	return t.srv.Close()
}
