package mr

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/codec"
	"repro/internal/iokit"
)

// Transport is how reduce tasks fetch map output segments. The default
// LocalTransport reads them straight from the task filesystem (the
// single-process analogue of a local fetch); TCPTransport serves them
// over a real socket, exercising a genuine network path like Hadoop's
// shuffle ServletFetcher. Fetch honors ctx: cancelling it aborts an
// in-flight transfer, not just the gap between transfers.
type Transport interface {
	// Fetch opens a segment for reading and reports its transfer size.
	Fetch(ctx context.Context, fs iokit.FS, name string) (io.ReadCloser, int64, error)
	// Close releases transport resources after the job completes.
	Close() error
}

// LocalTransport fetches segments directly from the filesystem.
type LocalTransport struct{}

// Fetch implements Transport.
func (LocalTransport) Fetch(ctx context.Context, fs iokit.FS, name string) (io.ReadCloser, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	size, err := fs.Size(name)
	if err != nil {
		return nil, 0, err
	}
	r, err := fs.Open(name)
	if err != nil {
		return nil, 0, err
	}
	return r, size, nil
}

// Close implements Transport.
func (LocalTransport) Close() error { return nil }

// Wire protocol. The base frame shapes are v1's: the client sends a
// uvarint-length-prefixed file name, the server answers uvarint(size+1)
// then the body, or uvarint(0) plus a length-prefixed error string.
//
// v2 adds a capability handshake without costing a round trip. Names
// are never empty, so a first byte of 0x00 can never start a legal v1
// request; v2 clients use it as a control escape. At connect the client
// pipelines a hello — 0x00, wireMagic, caps — in the same write as its
// first request, and reads the server's two-byte ack (wireMagicAck,
// granted caps) before the first response header. Every later frame
// beginning 0x00 is a control frame (today: a mux batch open, mux.go).
// A v2 server that never sees a hello serves the connection as pure v1,
// which is the compatibility fallback for old clients.
//
// Negotiable capabilities:
//
//   - capCompress: response bodies may be Snappy-compressed. The
//     response header gains one encoding byte after the size, and a
//     compressed body is a sequence of uvarint(len)-prefixed Snappy
//     blocks that decode to exactly the advertised raw size.
//   - capMux: the client may multiplex many segment requests onto the
//     connection as one batch with per-stream flow control (mux.go).
const (
	wireHello    = 0x00
	wireMagic    = 0xA5
	wireMagicAck = 0x5A

	capCompress = 0x01
	capMux      = 0x02
	serverCaps  = capCompress | capMux

	encodingRaw    = 0x00
	encodingSnappy = 0x01

	// wireCompressMin is the smallest body worth compressing; below it
	// the encoding byte says raw and the body is verbatim.
	wireCompressMin = 512

	// wireChunk is the body chunk size: the unit of compression, of mux
	// DATA frames, and of the coalesced header+first-bytes write.
	wireChunk = copyBufSize

	// maxWireUnit bounds one compressed unit: a wireChunk of
	// incompressible bytes grows only by the block preamble and literal
	// headers, so anything larger is a corrupt or hostile length.
	maxWireUnit = wireChunk + 64
)

// Wire protocol frame limits. Request frames carry file names; error
// frames carry error strings. Anything larger is rejected before
// allocation so a corrupt or hostile peer cannot force large buffers.
const (
	maxNameFrame = 4 << 10
	maxErrFrame  = 64 << 10
)

// SegmentServer serves segment files from an FS over TCP, speaking the
// persistent length-prefixed protocol above. After a response the
// connection returns to a clean frame boundary and the client may issue
// the next request on it, which is what makes connection pooling
// possible. It is the addressable generalization of the loopback-only
// shuffle server: cluster workers bind it on a routable address and
// peer workers fetch from it directly.
type SegmentServer struct {
	fs    iokit.FS
	meter *iokit.Meter // optional: meters serve-side disk reads
	ln    net.Listener

	served     atomic.Int64
	servedWire atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewSegmentServer starts a listener on addr (e.g. "127.0.0.1:0")
// serving fs. meter, when non-nil, receives the serve-side disk reads —
// useful when fs itself is unmetered (the cluster worker's base FS).
func NewSegmentServer(fs iokit.FS, addr string, meter *iokit.Meter) (*SegmentServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewSegmentServerOn(fs, ln, meter), nil
}

// NewSegmentServerOn serves fs on an already-bound listener — the hook
// that lets cluster workers and the chaos harness interpose on the data
// plane (e.g. a fault-injecting listener wrapper) before serving starts.
func NewSegmentServerOn(fs iokit.FS, ln net.Listener, meter *iokit.Meter) *SegmentServer {
	s := &SegmentServer{fs: fs, meter: meter, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.serve()
	return s
}

// Addr reports the listener address, in a form peers can dial.
func (s *SegmentServer) Addr() string { return s.ln.Addr().String() }

// ServedBytes reports the total raw payload bytes served to clients.
func (s *SegmentServer) ServedBytes() int64 { return s.served.Load() }

// ServedWireBytes reports the body bytes actually written to sockets;
// on compression-negotiated connections this is the post-Snappy count,
// so ServedBytes-ServedWireBytes is the shuffle traffic saved.
func (s *SegmentServer) ServedWireBytes() int64 { return s.servedWire.Load() }

// count post-counts one served body: raw payload bytes and the bytes
// that hit the wire for them. Post-counting (instead of a metering
// reader wrapped around the file) is what keeps the raw *os.File
// visible to io.Copy for the sendfile fast path.
func (s *SegmentServer) count(raw, wire int64) {
	if raw > 0 {
		s.served.Add(raw)
		if s.meter != nil {
			s.meter.AddRead(raw)
		}
	}
	if wire > 0 {
		s.servedWire.Add(wire)
	}
}

func (s *SegmentServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// handleConn serves requests on one persistent connection until the
// client closes it or a frame is malformed. The bufio reader lives for
// the connection, so uvarint parsing costs no extra syscalls and any
// bytes it reads ahead stay on this connection's frame stream.
func (s *SegmentServer) handleConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 32<<10)
	var caps byte
	for {
		b0, err := br.ReadByte()
		if err != nil {
			return // client done (EOF) or dead
		}
		if b0 == wireHello {
			ctrl, err := br.ReadByte()
			if err != nil {
				return
			}
			switch ctrl {
			case wireMagic:
				want, err := br.ReadByte()
				if err != nil {
					return
				}
				caps = want & serverCaps
				if _, err := conn.Write([]byte{wireMagicAck, caps}); err != nil {
					return
				}
			case ctrlBatch:
				if caps&capMux == 0 {
					return // batch frame without negotiating mux
				}
				if !s.handleBatch(conn, br, caps) {
					return
				}
			default:
				return // unknown control frame
			}
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return
		}
		nameBuf, err := readLenPrefixed(br, maxNameFrame)
		if err != nil {
			return
		}
		name := string(nameBuf)
		putFrameBuf(nameBuf)
		if !s.handleOne(conn, name, caps) {
			return
		}
	}
}

// handleOne answers a single request; it reports whether the connection
// is still at a clean frame boundary and may serve another.
func (s *SegmentServer) handleOne(conn net.Conn, name string, caps byte) bool {
	size, err := s.fs.Size(name)
	if err != nil {
		return writeError(conn, err)
	}
	f, err := s.fs.Open(name)
	if err != nil {
		return writeError(conn, err)
	}
	defer f.Close()
	if caps&capCompress != 0 && size >= wireCompressMin {
		return s.sendCompressed(conn, f, size)
	}
	return s.sendRaw(conn, f, size, caps)
}

// sendRaw streams a body verbatim. The response header and the first
// body chunk are coalesced into one write, so small segments cost a
// single send instead of a header packet plus a body packet; the rest
// of an OS-backed file is spliced with sendfile.
func (s *SegmentServer) sendRaw(conn net.Conn, f io.ReadCloser, size int64, caps byte) bool {
	buf := getCopyBuf(nil)
	defer putCopyBuf(nil, buf)
	hdr := binary.AppendUvarint(buf[:0], uint64(size)+1) // size+1: 0 means error
	if caps&capCompress != 0 {
		hdr = append(hdr, encodingRaw)
	}
	first := int64(len(buf) - len(hdr))
	if first > size {
		first = size
	}
	n, err := io.ReadFull(f, buf[len(hdr):int64(len(hdr))+first])
	if err != nil {
		// Nothing is on the wire yet. A shrank file is a stable fact the
		// client should hear about; any other read fault drops the
		// connection so the client's retry path sees a transient
		// transport failure, exactly as a mid-body fault would.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return writeError(conn, err)
		}
		return false
	}
	if _, err := conn.Write(buf[:len(hdr)+n]); err != nil {
		return false
	}
	sent := int64(n)
	ok := true
	if remaining := size - sent; remaining > 0 {
		var m int64
		if osf, raw := iokit.RawFile(f); raw {
			// Zero-copy: a LimitedReader directly over the *os.File lets
			// io.Copy reach TCPConn.ReadFrom, which splices the file to
			// the socket (sendfile) without passing through user space.
			m, err = io.Copy(conn, &io.LimitedReader{R: osf, N: remaining})
		} else {
			m, err = io.CopyBuffer(conn, io.LimitReader(f, remaining), buf)
		}
		sent += m
		ok = err == nil && m == remaining
	}
	s.count(sent, sent)
	return ok
}

// sendCompressed streams a body as uvarint(len)-prefixed Snappy blocks.
// Each block carries its own raw length, so the client needs no
// terminator: it reads blocks until their raw sizes sum to the
// advertised body size, leaving the connection at a frame boundary.
func (s *SegmentServer) sendCompressed(conn net.Conn, f io.ReadCloser, size int64) bool {
	chunk := getCopyBuf(nil)
	defer putCopyBuf(nil, chunk)
	var out, block []byte
	var raw, wire int64
	hdrDone := false
	for raw < size {
		n := size - raw
		if n > int64(len(chunk)) {
			n = int64(len(chunk))
		}
		if _, err := io.ReadFull(f, chunk[:n]); err != nil {
			if !hdrDone && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
				return writeError(conn, err) // file shrank: stable, reportable
			}
			s.count(raw, wire)
			return false
		}
		block = codec.AppendSnappyBlock(block[:0], chunk[:n])
		out = out[:0]
		if !hdrDone {
			out = binary.AppendUvarint(out, uint64(size)+1)
			out = append(out, encodingSnappy)
			hdrDone = true
		}
		unitStart := len(out)
		out = binary.AppendUvarint(out, uint64(len(block)))
		out = append(out, block...)
		if _, err := conn.Write(out); err != nil {
			s.count(raw, wire)
			return false
		}
		raw += n
		wire += int64(len(out) - unitStart)
	}
	s.count(raw, wire)
	return true
}

// Close stops the listener, severs live connections — remote clients
// may hold pooled sockets open indefinitely, and a clean shutdown must
// not wait on them — and waits for handler goroutines to drain.
func (s *SegmentServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func writeError(conn net.Conn, err error) bool {
	msg := err.Error()
	if len(msg) > maxErrFrame {
		msg = msg[:maxErrFrame]
	}
	buf := binary.AppendUvarint(nil, 0)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	_, werr := conn.Write(buf)
	return werr == nil
}

// frameReader is what frame parsing needs: a reader that also yields
// single bytes without over-reading. bufio.Reader and bytes.Reader both
// qualify; a bare net.Conn does not, which statically keeps frame
// parsing off the one-syscall-per-byte path.
type frameReader interface {
	io.Reader
	io.ByteReader
}

// readLenPrefixed reads one uvarint-length-prefixed frame, rejecting
// frames larger than max before allocating, so truncated or hostile
// length prefixes cannot force oversized buffers.
func readLenPrefixed(r frameReader, max uint64) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > max {
		return nil, fmt.Errorf("mr: transport frame of %d bytes exceeds limit %d", n, max)
	}
	buf := getFrameBuf(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		putFrameBuf(buf)
		return nil, err
	}
	return buf, nil
}

type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// uvarintLen reports how many bytes binary.AppendUvarint emits for v —
// used to post-count wire framing without materializing it twice.
func uvarintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Fetch retry policy: connection-level failures (dial errors, a peer
// dropping the connection before the response header arrives) are
// retried a bounded number of times with jittered exponential backoff —
// the policy shared with the cluster RPC client — so workers that lost
// the same peer do not hammer it back in lockstep. Server-reported
// errors (e.g. a missing segment) are authoritative and fail
// immediately.
const (
	fetchAttempts       = 3
	fetchRetryBackoff   = 2 * time.Millisecond
	fetchBackoffCeiling = 250 * time.Millisecond
)

// ConnPool is a keyed client-connection pool for the segment protocol:
// connections are pooled per server address with keep-alive, a fetch
// whose body is fully consumed returns its connection for reuse, and
// idle connections past IdleTimeout are discarded on next use. Pooling
// matters on multi-reduce jobs: without it every (partition, map task)
// segment fetch pays a fresh TCP dial to the same few servers — and
// with protocol v2 a pooled connection also keeps its negotiated
// capabilities, so the handshake is paid once per connection, not per
// fetch.
type ConnPool struct {
	// IdleTimeout discards pooled connections idle longer than this.
	// Defaults to 30s.
	IdleTimeout time.Duration
	// MaxIdlePerHost caps pooled connections per server address.
	// Defaults to 8.
	MaxIdlePerHost int
	// WireCompression requests Snappy-compressed bodies during the
	// connection handshake. Transparent to callers: fetch readers always
	// yield raw bytes; only the bytes on the wire change.
	WireCompression bool

	dials atomic.Int64

	mu     sync.Mutex
	idle   map[string][]pooledConn
	closed bool
}

// wireConn is a pooled client connection plus its negotiated state: the
// connection-lifetime buffered reader every response is parsed through,
// and the capability set agreed at handshake.
type wireConn struct {
	conn       net.Conn
	br         *bufio.Reader
	caps       byte
	handshaken bool
}

type pooledConn struct {
	wc     *wireConn
	parked time.Time
}

// NewConnPool returns an empty pool with default limits.
func NewConnPool() *ConnPool {
	return &ConnPool{idle: make(map[string][]pooledConn)}
}

// Dials reports how many TCP dials the pool has performed — the pool's
// miss count. A multi-reduce job with pooling performs far fewer dials
// than it performs fetches.
func (p *ConnPool) Dials() int64 { return p.dials.Load() }

func (p *ConnPool) idleTimeout() time.Duration {
	if p.IdleTimeout > 0 {
		return p.IdleTimeout
	}
	return 30 * time.Second
}

func (p *ConnPool) maxIdle() int {
	if p.MaxIdlePerHost > 0 {
		return p.MaxIdlePerHost
	}
	return 8
}

// clientCaps is what this pool asks for in a hello frame.
func (p *ConnPool) clientCaps() byte {
	caps := byte(capMux)
	if p.WireCompression {
		caps |= capCompress
	}
	return caps
}

// get returns a pooled connection to addr, or dials a fresh one. fresh
// forces a dial (used after a pooled connection turned out stale).
func (p *ConnPool) get(ctx context.Context, addr string, fresh bool) (*wireConn, error) {
	if !fresh {
		cutoff := time.Now().Add(-p.idleTimeout())
		p.mu.Lock()
		conns := p.idle[addr]
		for len(conns) > 0 {
			pc := conns[len(conns)-1]
			conns = conns[:len(conns)-1]
			p.idle[addr] = conns
			if pc.parked.Before(cutoff) {
				pc.wc.conn.Close()
				continue
			}
			p.mu.Unlock()
			return pc.wc, nil
		}
		p.mu.Unlock()
	}
	p.dials.Add(1)
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &wireConn{conn: conn, br: bufio.NewReaderSize(conn, 32<<10)}, nil
}

// put parks a connection for reuse; the caller asserts it sits at a
// clean frame boundary (nothing read ahead, nothing owed).
func (p *ConnPool) put(addr string, wc *wireConn) {
	if wc.br.Buffered() != 0 {
		// Read-ahead past a frame boundary means the connection state is
		// not what the next fetch expects; never pool it.
		wc.conn.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle[addr]) >= p.maxIdle() {
		p.mu.Unlock()
		wc.conn.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], pooledConn{wc: wc, parked: time.Now()})
	p.mu.Unlock()
}

// Close discards all pooled connections. In-flight fetches keep their
// connections and close them individually.
func (p *ConnPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for addr, conns := range p.idle {
		for _, pc := range conns {
			pc.wc.conn.Close()
		}
		delete(p.idle, addr)
	}
	return nil
}

// Fetch requests one segment from the server at addr and streams its
// body, retrying connection-level failures with backoff. Cancelling ctx
// closes the in-flight connection, so a fetch that lost a speculative
// race or belongs to a cancelled job aborts mid-transfer instead of
// running to completion.
func (p *ConnPool) Fetch(ctx context.Context, addr, name string) (io.ReadCloser, int64, error) {
	var lastErr error
	for attempt := 0; attempt < fetchAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff.Exp(fetchRetryBackoff, attempt, fetchBackoffCeiling)):
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		// Attempt 0 may reuse a pooled connection; if that fails at the
		// connection level it was likely stale, so later attempts dial
		// fresh.
		rc, size, err, retryable := p.fetchOnce(ctx, addr, name, attempt > 0)
		if err == nil {
			return rc, size, nil
		}
		if !retryable {
			return nil, 0, err
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("mr: shuffle fetch %s from %s failed after %d attempts: %w",
		name, addr, fetchAttempts, lastErr)
}

// readAck consumes the server's two-byte handshake ack and records the
// granted capabilities on the connection.
func (wc *wireConn) readAck(want byte) error {
	var ack [2]byte
	if _, err := io.ReadFull(wc.br, ack[:]); err != nil {
		return err
	}
	if ack[0] != wireMagicAck {
		return fmt.Errorf("mr: bad handshake ack 0x%02x", ack[0])
	}
	wc.caps = ack[1] & want
	wc.handshaken = true
	return nil
}

// fetchOnce performs a single fetch exchange. retryable reports whether
// the failure happened at the connection level (before a valid response
// header), where a retry may see a healthy connection.
func (p *ConnPool) fetchOnce(ctx context.Context, addr, name string, fresh bool) (rc io.ReadCloser, size int64, err error, retryable bool) {
	wc, err := p.get(ctx, addr, fresh)
	if err != nil {
		return nil, 0, err, true
	}
	conn := wc.conn
	// While this request is in flight, ctx cancellation closes the
	// connection so blocked reads and writes abort promptly.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	fail := func(err error, retryable bool) (io.ReadCloser, int64, error, bool) {
		stop()
		conn.Close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, 0, cerr, false
		}
		return nil, 0, err, retryable
	}
	// A fresh connection pipelines the hello with the request in one
	// write; the handshake costs no extra round trip.
	var req []byte
	want := p.clientCaps()
	if !wc.handshaken {
		req = append(req, wireHello, wireMagic, want)
	}
	req = binary.AppendUvarint(req, uint64(len(name)))
	req = append(req, name...)
	if _, err := conn.Write(req); err != nil {
		return fail(err, true)
	}
	if !wc.handshaken {
		if err := wc.readAck(want); err != nil {
			return fail(err, true)
		}
	}
	sizePlus, err := binary.ReadUvarint(wc.br)
	if err != nil {
		return fail(err, true)
	}
	if sizePlus == 0 {
		msg, err := readLenPrefixed(wc.br, maxErrFrame)
		if err != nil {
			return fail(fmt.Errorf("mr: shuffle fetch failed: %w", err), true)
		}
		// Server-reported errors are authoritative; the connection is at
		// a frame boundary, so it can be reused.
		stop()
		p.put(addr, wc)
		ferr := fmt.Errorf("mr: shuffle fetch %s from %s: %s", name, addr, msg)
		putFrameBuf(msg)
		return nil, 0, ferr, false
	}
	size = int64(sizePlus - 1)
	fr := &fetchReader{pool: p, addr: addr, wc: wc, ctx: ctx, stop: stop, size: size, remaining: size}
	if wc.caps&capCompress != 0 {
		enc, err := wc.br.ReadByte()
		if err != nil {
			return fail(err, true)
		}
		switch enc {
		case encodingRaw:
		case encodingSnappy:
			fr.dec = &snappyUnitReader{br: wc.br, remaining: size}
		default:
			return fail(fmt.Errorf("mr: unknown body encoding 0x%02x", enc), true)
		}
	}
	return fr, size, nil, false
}

// snappyUnitReader decodes a compressed body: uvarint(len)-prefixed
// Snappy blocks whose raw sizes sum to exactly remaining. It consumes
// nothing past the final block, so the connection lands on a clean
// frame boundary.
type snappyUnitReader struct {
	br        *bufio.Reader
	remaining int64 // raw bytes the stream still owes
	wire      int64 // framed bytes consumed off the socket
	block     []byte
	pos       int
	err       error
}

func (d *snappyUnitReader) Read(p []byte) (int, error) {
	for d.pos >= len(d.block) {
		if d.err != nil {
			return 0, d.err
		}
		if d.remaining <= 0 {
			d.err = io.EOF
			return 0, io.EOF
		}
		if err := d.fill(); err != nil {
			d.err = err
			return 0, err
		}
	}
	n := copy(p, d.block[d.pos:])
	d.pos += n
	return n, nil
}

func (d *snappyUnitReader) fill() error {
	compLen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return unexpectedEOF(err)
	}
	if compLen == 0 || compLen > maxWireUnit {
		return fmt.Errorf("mr: compressed wire unit of %d bytes exceeds limit %d", compLen, maxWireUnit)
	}
	buf := getFrameBuf(int(compLen))
	if _, err := io.ReadFull(d.br, buf); err != nil {
		putFrameBuf(buf)
		return unexpectedEOF(err)
	}
	block, err := codec.DecompressSnappyBlock(buf)
	putFrameBuf(buf)
	if err != nil {
		return fmt.Errorf("mr: wire decompression: %w", err)
	}
	if len(block) == 0 || int64(len(block)) > d.remaining {
		return fmt.Errorf("mr: wire unit decoded to %d raw bytes with %d expected", len(block), d.remaining)
	}
	d.wire += uvarintLen(compLen) + int64(compLen)
	d.remaining -= int64(len(block))
	d.block, d.pos = block, 0
	return nil
}

// unexpectedEOF maps a clean EOF mid-structure to ErrUnexpectedEOF:
// for a reader that still owes bytes, a peer hanging up early is a
// truncation, never a clean end.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// fetchReader streams one fetch body. Closing it after the body is
// fully consumed returns the connection to the pool; closing early (or
// after cancellation) discards it.
type fetchReader struct {
	pool      *ConnPool
	addr      string
	wc        *wireConn
	ctx       context.Context
	stop      func() bool
	size      int64
	remaining int64
	dec       *snappyUnitReader // nil for raw bodies
	closed    bool
}

func (f *fetchReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	var n int
	var err error
	if f.dec != nil {
		n, err = f.dec.Read(p)
	} else {
		n, err = f.wc.br.Read(p)
	}
	f.remaining -= int64(n)
	if err != nil {
		// Surface cancellation as the cause when it closed the conn.
		if cerr := f.ctx.Err(); cerr != nil {
			return n, cerr
		}
		if f.remaining > 0 {
			// The peer ended the stream while still owing bytes: that is
			// a truncation and must fail loudly (io.Copy treats a bare
			// io.EOF as a clean end).
			return n, unexpectedEOF(err)
		}
		return n, err
	}
	return n, nil
}

// WireBytes reports the socket bytes consumed for the body so far: the
// raw count for uncompressed fetches, the framed compressed count
// otherwise. Meaningful once the body is fully read.
func (f *fetchReader) WireBytes() int64 {
	if f.dec != nil {
		return f.dec.wire
	}
	return f.size - f.remaining
}

func (f *fetchReader) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.stop()
	if f.remaining == 0 && f.ctx.Err() == nil {
		f.pool.put(f.addr, f.wc)
		return nil
	}
	return f.wc.conn.Close()
}

// WireBytes reports the bytes a fetched body occupied on the network,
// when rc came from a wire transport that tracks them (pooled and
// multiplexed fetch readers do). Callers feed this into the shuffle
// wire counters next to the raw size.
func WireBytes(rc io.ReadCloser) (int64, bool) {
	if w, ok := rc.(interface{ WireBytes() int64 }); ok {
		return w.WireBytes(), true
	}
	return 0, false
}

// Extra counters for the shuffle wire: raw body bytes fetched versus
// bytes those bodies occupied on the wire. With compression negotiated
// the wire count drops below raw; without it they match.
const (
	CounterShuffleRawBytes  = "mr.shuffleRawBytes"
	CounterShuffleWireBytes = "mr.shuffleWireBytes"
)

// countWireBytes records the raw-vs-wire pair for one fully consumed
// fetch body.
func countWireBytes(counters *Counters, rc io.ReadCloser, raw int64) {
	if counters == nil {
		return
	}
	if wire, ok := WireBytes(rc); ok {
		counters.AddExtra(CounterShuffleRawBytes, raw)
		counters.AddExtra(CounterShuffleWireBytes, wire)
	}
}

// TCPTransport is the single-process shuffle-over-sockets transport: a
// SegmentServer on loopback plus a pooled, multiplexing client fetching
// from it.
type TCPTransport struct {
	srv  *SegmentServer
	pool *ConnPool
	mux  *MuxFetcher
}

// NewTCPTransport starts a loopback listener serving fs.
func NewTCPTransport(fs iokit.FS) (*TCPTransport, error) {
	return newTCPTransport(fs, nil, false)
}

// newTCPTransport starts the loopback transport, optionally wrapping
// the listener (Job.WrapShuffleListener — the chaos harness's
// data-plane injection point) and negotiating wire compression
// (Job.WireCompression).
func newTCPTransport(fs iokit.FS, wrap func(net.Listener) net.Listener, compress bool) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if wrap != nil {
		ln = wrap(ln)
	}
	pool := NewConnPool()
	pool.WireCompression = compress
	return &TCPTransport{srv: NewSegmentServerOn(fs, ln, nil), pool: pool, mux: NewMuxFetcher(pool)}, nil
}

// Addr reports the listener address (tests and diagnostics).
func (t *TCPTransport) Addr() string { return t.srv.Addr() }

// Dials reports the TCP dials performed by the transport's pool.
func (t *TCPTransport) Dials() int64 { return t.pool.Dials() }

// Fetch implements Transport: it requests the segment from the loopback
// server over a pooled socket, riding a multiplexed batch when other
// fetches to the server are in flight.
func (t *TCPTransport) Fetch(ctx context.Context, _ iokit.FS, name string) (io.ReadCloser, int64, error) {
	return t.mux.Fetch(ctx, t.srv.Addr(), name)
}

// Close implements Transport: discards pooled connections, stops the
// listener, and waits for in-flight connections.
func (t *TCPTransport) Close() error {
	t.pool.Close()
	return t.srv.Close()
}
