package mr

import (
	"context"
	"time"

	"repro/internal/iokit"
)

// SegmentInfo is the exported description of one map-output segment: a
// sorted run of framed records for one reduce partition. The cluster
// runtime ships these between processes (the file lives on the worker
// that produced it and is served by its SegmentServer).
type SegmentInfo struct {
	// Partition is the reduce partition the segment belongs to.
	Partition int
	// File is the segment's name in the producing worker's filesystem.
	File string
	// Records is the framed record count, RawBytes the pre-codec size.
	Records  int64
	RawBytes int64
}

func exportSegments(segs []segment) []SegmentInfo {
	out := make([]SegmentInfo, len(segs))
	for i, s := range segs {
		out[i] = SegmentInfo{Partition: s.partition, File: s.file, Records: s.records, RawBytes: s.rawBytes}
	}
	return out
}

func importSegments(infos []SegmentInfo) []segment {
	out := make([]segment, len(infos))
	for i, s := range infos {
		out[i] = segment{partition: s.Partition, file: s.File, records: s.Records, rawBytes: s.RawBytes}
	}
	return out
}

// ExecMapTask runs one map-task attempt of job against fs: the Mapper
// over split, collect/sort/spill, returning the produced segments. It
// is the task entry point remote executors (internal/cluster workers)
// call with a registry-built job; the single-process engine uses the
// same underlying path. The job is defaulted with normalized, so a
// builder-produced job need not pre-fill optional fields.
func ExecMapTask(ctx context.Context, job *Job, fs iokit.FS, counters *Counters, taskID, attempt int, split Split) ([]SegmentInfo, error) {
	j, err := job.normalized()
	if err != nil {
		return nil, err
	}
	counters.InitPartitions(j.NumReduceTasks)
	segs, err := runMapTask(ctx, j, fs, counters, taskID, attempt, split)
	if err != nil {
		return nil, err
	}
	return exportSegments(segs), nil
}

// ExecReduceTask runs one reduce-task attempt of job over segments that
// are already local in fs (a remote executor fetches them first, as the
// pipelined scheduler's fetch tasks do), merging them in the given
// order and invoking Reduce per key group. Segment order must be the
// map-task order for output to be byte-identical with the
// single-process engine. The task's single-threaded wall time is
// charged as reduce CPU.
func ExecReduceTask(ctx context.Context, job *Job, fs iokit.FS, counters *Counters, partition, attempt int, segs []SegmentInfo) ([]Record, error) {
	j, err := job.normalized()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { counters.reduceTaskNs.Add(time.Since(start).Nanoseconds()) }()
	return reduceMerge(ctx, j, fs, counters, partition, attempt, importSegments(segs))
}
