package mr

import (
	"container/heap"
	"errors"
	"io"

	"repro/internal/bytesx"
)

// recordStream yields framed records in key order. Implementations
// return io.EOF after the last record; returned slices are valid until
// the next call on the same stream.
type recordStream interface {
	next() (key, value []byte, err error)
}

// readerStream adapts a bytesx.Reader (over a spill or segment file).
// It closes itself on clean EOF; close may release the reader to a pool,
// so next guards against use after release.
type readerStream struct {
	r     *bytesx.Reader
	close func() error
}

func (s *readerStream) next() ([]byte, []byte, error) {
	if s.r == nil {
		return nil, nil, io.EOF
	}
	k, v, err := s.r.ReadRecord()
	if errors.Is(err, io.EOF) {
		if cerr := s.closeStream(); cerr != nil {
			return nil, nil, cerr
		}
	}
	return k, v, err
}

// closeStream closes the underlying file (and returns any pooled
// reader). It is idempotent, so error-path cleanup can close every
// stream of a merge without tracking which ones already hit EOF.
func (s *readerStream) closeStream() error {
	if s.close == nil {
		return nil
	}
	c := s.close
	s.close = nil
	s.r = nil
	return c()
}

// streamCloser is implemented by record streams holding resources that
// outlive a failed merge.
type streamCloser interface {
	closeStream() error
}

// closeRecordStream best-effort closes a stream if it holds resources.
// Used on merge error paths, where the primary error is already being
// returned.
func closeRecordStream(s recordStream) {
	if c, ok := s.(streamCloser); ok {
		_ = c.closeStream()
	}
}

// mergeIter merges multiple sorted record streams into one sorted
// stream, breaking key ties by stream index so merging is deterministic
// and stable.
type mergeIter struct {
	items mergeHeap
	err   error
}

type mergeItem struct {
	key, value []byte
	// spareKey/spareVal double-buffer the stream's records: the slices
	// handed to the caller at call n are recycled as the copy target at
	// call n+1, honoring the documented one-call validity window with
	// zero steady-state allocation.
	spareKey, spareVal []byte
	stream             recordStream
	index              int
}

type mergeHeap struct {
	items []*mergeItem
	cmp   bytesx.Compare
}

func (h mergeHeap) Len() int { return len(h.items) }
func (h mergeHeap) Less(i, j int) bool {
	c := h.cmp(h.items[i].key, h.items[j].key)
	if c != 0 {
		return c < 0
	}
	return h.items[i].index < h.items[j].index
}
func (h mergeHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(*mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// newMergeIter primes one heap entry per non-empty stream.
func newMergeIter(streams []recordStream, cmp bytesx.Compare) (*mergeIter, error) {
	m := &mergeIter{items: mergeHeap{cmp: cmp}}
	for i, s := range streams {
		k, v, err := s.next()
		if errors.Is(err, io.EOF) {
			continue
		}
		if err != nil {
			return nil, err
		}
		m.items.items = append(m.items.items, &mergeItem{
			key:    bytesx.Clone(k),
			value:  bytesx.Clone(v),
			stream: s,
			index:  i,
		})
	}
	heap.Init(&m.items)
	return m, nil
}

// next returns the globally smallest record, or io.EOF. The returned
// slices are valid until the following call.
func (m *mergeIter) next() ([]byte, []byte, error) {
	if m.err != nil {
		return nil, nil, m.err
	}
	if m.items.Len() == 0 {
		return nil, nil, io.EOF
	}
	top := m.items.items[0]
	key, value := top.key, top.value
	// Advance the winning stream and restore the heap. The popped
	// key/value are handed to the caller; the stream's next record is
	// copied into the item's spare buffers (recycled from the record
	// handed out one call earlier), so the steady state allocates
	// nothing.
	k, v, err := top.stream.next()
	if errors.Is(err, io.EOF) {
		heap.Pop(&m.items)
	} else if err != nil {
		m.err = err
		return nil, nil, err
	} else {
		top.spareKey = append(top.spareKey[:0], k...)
		top.spareVal = append(top.spareVal[:0], v...)
		top.key, top.spareKey = top.spareKey, top.key
		top.value, top.spareVal = top.spareVal, top.value
		heap.Fix(&m.items, 0)
	}
	return key, value, nil
}

// groupedIter walks a merged stream one key group at a time, where a
// group is a maximal run of keys equal under groupCmp. It backs the
// ValueIter handed to Reduce calls.
type groupedIter struct {
	m        *mergeIter
	groupCmp bytesx.Compare

	pendingKey []byte
	pendingVal []byte
	hasPending bool
	done       bool
	err        error
}

func newGroupedIter(m *mergeIter, groupCmp bytesx.Compare) *groupedIter {
	return &groupedIter{m: m, groupCmp: groupCmp}
}

// nextGroup positions the iterator at the next key group, returning its
// (cloned) first key, or false when the stream is exhausted.
func (g *groupedIter) nextGroup() ([]byte, bool, error) {
	if g.err != nil || g.done {
		return nil, false, g.err
	}
	if !g.hasPending {
		k, v, err := g.m.next()
		if errors.Is(err, io.EOF) {
			g.done = true
			return nil, false, nil
		}
		if err != nil {
			g.err = err
			return nil, false, err
		}
		g.pendingKey, g.pendingVal = k, v
		g.hasPending = true
	}
	return bytesx.Clone(g.pendingKey), true, nil
}

// groupValues returns the ValueIter over the current group. It must be
// drained (or abandoned via drain) before nextGroup is called again.
func (g *groupedIter) groupValues(groupKey []byte) *groupValueIter {
	return &groupValueIter{g: g, key: groupKey}
}

type groupValueIter struct {
	g   *groupedIter
	key []byte
}

// Next implements ValueIter.
func (it *groupValueIter) Next() ([]byte, bool) {
	g := it.g
	if g.err != nil {
		return nil, false
	}
	if g.hasPending {
		if g.groupCmp(g.pendingKey, it.key) != 0 {
			return nil, false
		}
		// pendingVal is a private clone, safe to hand out.
		v := g.pendingVal
		g.hasPending = false
		g.pendingVal = nil
		return v, true
	}
	k, v, err := g.m.next()
	if errors.Is(err, io.EOF) {
		g.done = true
		return nil, false
	}
	if err != nil {
		g.err = err
		return nil, false
	}
	if g.groupCmp(k, it.key) != 0 {
		g.pendingKey = bytesx.Clone(k)
		g.pendingVal = bytesx.Clone(v)
		g.hasPending = true
		return nil, false
	}
	return v, true
}

// drain consumes any unread values of the group so the parent iterator
// can move on even when Reduce did not exhaust its input.
func (it *groupValueIter) drain() error {
	for {
		if _, ok := it.Next(); !ok {
			return it.g.err
		}
	}
}
