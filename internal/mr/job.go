package mr

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"time"

	"repro/internal/bytesx"
	"repro/internal/codec"
	"repro/internal/iokit"
	"repro/internal/obs"
)

// Job configures one MapReduce execution. NewMapper / NewReducer /
// NewCombiner are factories because each task gets a private instance
// (tasks run concurrently and instances may hold per-task state).
type Job struct {
	// Name labels the job in file names and logs.
	Name string
	// Workspace is the file-name prefix under which every file the job
	// writes (spills, map-output segments, fetch copies, merge
	// intermediates, Shared anti-combining spills) is created. It
	// defaults to Name; the cluster runtime sets a per-job-instance
	// value ("j000042") so one worker filesystem can host many
	// concurrent jobs without path collisions and a finished job's
	// files can all be removed under one prefix.
	Workspace string
	// NewMapper creates the Mapper for one map task. Required.
	NewMapper func() Mapper
	// NewReducer creates the Reducer for one reduce task. Required.
	NewReducer func() Reducer
	// NewCombiner, if set, creates the map-side combiner, run over
	// sorted runs at spill time (and during multi-spill merges).
	NewCombiner func() Reducer
	// Partitioner routes keys to reduce tasks. Defaults to
	// HashPartitioner.
	Partitioner Partitioner
	// NumReduceTasks is the number of reduce partitions. Defaults to 4.
	NumReduceTasks int
	// KeyCompare orders intermediate keys. Defaults to bytesx.Bytes.
	KeyCompare bytesx.Compare
	// GroupCompare decides which consecutive keys share a Reduce call
	// (Hadoop's grouping comparator, e.g. for secondary sort). Defaults
	// to KeyCompare.
	GroupCompare bytesx.Compare
	// Codec compresses map output on disk and over the shuffle.
	// Defaults to codec.Identity.
	Codec codec.Codec
	// SortBufferBytes caps the map-side collect buffer before a spill.
	// Defaults to 4 MiB.
	SortBufferBytes int
	// MergeFactor caps how many spill segments a single merge pass
	// consumes. Defaults to 10.
	MergeFactor int
	// FS is the local "disk" for spills and map output segments.
	// Defaults to a fresh in-memory filesystem.
	FS iokit.FS
	// Parallelism caps concurrently running tasks. Defaults to
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// SpillParallelism caps concurrent per-partition work inside one map
	// task: the run writes of a single spill and the per-partition final
	// merges run on up to this many goroutines. Independent runs write
	// independent files, so output is byte-identical at any setting.
	// Defaults to runtime.GOMAXPROCS(0); 1 reproduces the historical
	// strictly sequential spill/merge path.
	SpillParallelism int
	// DisablePooling turns off the engine's steady-state buffer pools
	// (collect arenas, entry slices, spill writers/readers, shuffle copy
	// buffers), so every task allocates fresh memory. It exists as the
	// A/B baseline for the pooled fast path; output bytes are identical
	// either way.
	DisablePooling bool
	// TCPShuffle routes the shuffle through a real loopback TCP
	// listener (map output segments are served over sockets and copied
	// to reducer-local files before merging, like Hadoop's fetch phase)
	// instead of direct filesystem reads.
	TCPShuffle bool
	// WrapShuffleListener, when non-nil and TCPShuffle is set, wraps the
	// shuffle server's listener before it starts accepting — the hook
	// the chaos harness uses to inject data-plane faults (connection
	// drops, stalls, truncations, bit-flips) into the in-process engine.
	WrapShuffleListener func(net.Listener) net.Listener
	// WireCompression, with TCPShuffle, negotiates Snappy compression of
	// segment bodies on the shuffle connections. Transparent: fetched
	// bytes (and job output) are identical; only bytes on the wire
	// shrink, reported by the mr.shuffleWireBytes / mr.shuffleRawBytes
	// extra counters.
	WireCompression bool
	// DisableChecksums turns off the CRC32C segment framing that spill,
	// merge, and map-output files carry by default (verified on local
	// merge reads and on shuffle fetches). It exists as the A/B baseline
	// preserving the historical byte-identical on-disk layout; logical
	// output is identical either way.
	DisableChecksums bool
	// Scheduler selects the execution engine. SchedulerPipelined (the
	// default) runs the job as an event-driven task graph: each reduce
	// partition's segment fetches start as soon as the map tasks feeding
	// it complete, overlapping shuffle with still-running map tasks the
	// way Hadoop's fetch phase does. SchedulerBarrier is the classic
	// two-phase engine with a hard barrier between map and reduce. Both
	// produce byte-identical output.
	Scheduler string
	// MaxTaskAttempts caps execution attempts per task (map, fetch,
	// reduce) under the pipelined scheduler. Attempts beyond the first
	// are made only for transient errors (injected I/O faults,
	// connection-level fetch failures), with exponential backoff.
	// Defaults to 1 (no retries).
	MaxTaskAttempts int
	// RetryBackoff is the delay before a task's first retry, doubling
	// per subsequent failure. Defaults to 1ms.
	RetryBackoff time.Duration
	// Speculative enables speculative re-execution of straggler map
	// attempts under the pipelined scheduler: when a map attempt runs
	// well past its siblings' median duration a duplicate attempt is
	// launched, the first finisher wins, and the loser is cancelled.
	// Output is unaffected; duplicate attempts do inflate work counters
	// (map input/output records, spills), as they do on Hadoop.
	Speculative bool
	// Tracer, when non-nil, receives typed trace spans from every layer
	// of the run — job, map/fetch/reduce attempts, combiner passes, and
	// anticombine's Shared spills — exportable as Chrome trace-event
	// JSON. Nil disables tracing at effectively zero cost.
	Tracer *obs.Tracer
	// Metrics, when non-nil, gets the job's live counters registered
	// under the job name for the duration of the run (and beyond: the
	// source stays registered so a reporter's final line matches the
	// job's final Stats).
	Metrics *obs.Registry
	// Deterministic declares that Map and Partitioner are deterministic
	// functions of their inputs. When false, Anti-Combining disables
	// LazySH (paper §6.2). The engine itself does not use it.
	Deterministic bool
	// AlignedInput declares that split i's map output routes entirely to
	// reduce partition i — the same-partitioning fast path a DAG stage
	// gets when it consumes the previous stage's partitioned output with
	// a partition-preserving map. The engine then requires exactly
	// NumReduceTasks splits, builds only the diagonal fetch tasks
	// (fetch/p/p), and reduce p depends on map p alone — the shuffle's
	// all-to-all edge set collapses to a per-partition pass-through. The
	// claim is enforced, not trusted: a map emission routed off the
	// diagonal fails the task with ErrMisaligned.
	AlignedInput bool
	// CollectOutput controls whether reduce output records are gathered
	// into Result.Output. Defaults to true; large jobs can disable it.
	DiscardOutput bool

	// rawKeyOrder is set by normalized when KeyCompare was left nil: the
	// default bytesx.Bytes order lets the spill sort inline bytes.Compare
	// instead of calling through the comparator function pointer.
	rawKeyOrder bool
}

// errJob reports an invalid job configuration.
var errJob = errors.New("mr: invalid job")

// normalized returns a defaulted copy of j, validating required fields.
func (j *Job) normalized() (*Job, error) {
	if j.NewMapper == nil {
		return nil, fmt.Errorf("%w: NewMapper is required", errJob)
	}
	if j.NewReducer == nil {
		return nil, fmt.Errorf("%w: NewReducer is required", errJob)
	}
	c := *j
	if c.Name == "" {
		c.Name = "job"
	}
	if c.Workspace == "" {
		c.Workspace = c.Name
	}
	if c.Partitioner == nil {
		c.Partitioner = HashPartitioner{}
	}
	if c.NumReduceTasks <= 0 {
		c.NumReduceTasks = 4
	}
	if c.KeyCompare == nil {
		c.KeyCompare = bytesx.Bytes
		c.rawKeyOrder = true
	}
	if c.GroupCompare == nil {
		c.GroupCompare = c.KeyCompare
	}
	if c.Codec == nil {
		c.Codec = codec.Identity{}
	}
	if c.SortBufferBytes <= 0 {
		c.SortBufferBytes = 4 << 20
	}
	if c.MergeFactor < 2 {
		c.MergeFactor = 10
	}
	if c.FS == nil {
		c.FS = iokit.NewMemFS()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.SpillParallelism <= 0 {
		c.SpillParallelism = runtime.GOMAXPROCS(0)
	}
	switch c.Scheduler {
	case "":
		c.Scheduler = SchedulerPipelined
	case SchedulerPipelined, SchedulerBarrier:
	default:
		return nil, fmt.Errorf("%w: unknown scheduler %q", errJob, c.Scheduler)
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	return &c, nil
}
