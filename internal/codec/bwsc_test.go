package codec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBWTKnown(t *testing.T) {
	// Classic example: rotations of "banana".
	bwt, primary := bwtForward([]byte("banana"))
	got := bwtInverse(bwt, primary)
	if string(got) != "banana" {
		t.Errorf("inverse = %q", got)
	}
	if string(bwt) != "nnbaaa" {
		t.Errorf("bwt(banana) = %q, want nnbaaa", bwt)
	}
}

func TestBWTEdgeCases(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{255},
		[]byte("a"),
		[]byte("aa"),
		[]byte("ab"),
		[]byte("abab"),
		bytes.Repeat([]byte{7}, 5000),
		bytes.Repeat([]byte("xy"), 3000),
	}
	for _, s := range cases {
		bwt, primary := bwtForward(s)
		got := bwtInverse(bwt, primary)
		if !bytes.Equal(got, s) {
			t.Errorf("BWT round trip failed for %d-byte input %q...", len(s), truncate(s))
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 16 {
		return b[:16]
	}
	return b
}

func TestBWTPropertyRoundTrip(t *testing.T) {
	f := func(s []byte) bool {
		bwt, primary := bwtForward(s)
		return bytes.Equal(bwtInverse(bwt, primary), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMTFRoundTrip(t *testing.T) {
	f := func(s []byte) bool {
		return bytes.Equal(mtfDecode(mtfEncode(s)), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMTFKnown(t *testing.T) {
	// "aaa" -> first 'a' is at index 97, then at front.
	got := mtfEncode([]byte("aaa"))
	if got[0] != 97 || got[1] != 0 || got[2] != 0 {
		t.Errorf("mtf(aaa) = %v", got)
	}
}

func TestRLE0RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(2000)
		mtf := make([]byte, n)
		for i := range mtf {
			if rng.Intn(3) > 0 { // bias toward zeros like real MTF output
				mtf[i] = 0
			} else {
				mtf[i] = byte(rng.Intn(255) + 1)
			}
		}
		syms := rle0Encode(mtf)
		got, err := rle0Decode(syms, len(mtf))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, mtf) {
			t.Fatalf("trial %d: RLE0 mismatch", trial)
		}
	}
}

func TestRLE0LongRuns(t *testing.T) {
	for _, runLen := range []int{1, 2, 3, 4, 7, 255, 256, 65535} {
		mtf := make([]byte, runLen)
		syms := rle0Encode(mtf)
		got, err := rle0Decode(syms, runLen)
		if err != nil || len(got) != runLen {
			t.Fatalf("run %d: err=%v len=%d", runLen, err, len(got))
		}
	}
}

func TestRLE0Corrupt(t *testing.T) {
	if _, err := rle0Decode([]int{300}, 10); err == nil {
		t.Error("out-of-range symbol should error")
	}
	if _, err := rle0Decode([]int{symRunA, symRunA, symRunA}, 1); err == nil {
		t.Error("overlong run should error")
	}
}

func TestHuffmanLengthsKraft(t *testing.T) {
	// Kraft inequality must hold with equality for any optimal code over
	// 2+ symbols.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		freq := make([]int, bwscAlphabet)
		nsym := rng.Intn(200) + 2
		for i := 0; i < nsym; i++ {
			freq[rng.Intn(bwscAlphabet)] += rng.Intn(1000) + 1
		}
		lengths := huffmanCodeLengths(freq)
		var kraft float64
		for s, l := range lengths {
			if freq[s] > 0 && l == 0 {
				t.Fatalf("trial %d: symbol %d has freq %d but zero length", trial, s, freq[s])
			}
			if l > 0 {
				kraft += 1 / float64(uint64(1)<<uint(l))
			}
		}
		if kraft > 1.0000001 {
			t.Fatalf("trial %d: kraft = %f > 1", trial, kraft)
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	freq := make([]int, bwscAlphabet)
	freq[symEOB] = 1
	lengths := huffmanCodeLengths(freq)
	if lengths[symEOB] != 1 {
		t.Errorf("single-symbol length = %d, want 1", lengths[symEOB])
	}
}

func TestCanonicalDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		freq := make([]int, bwscAlphabet)
		freq[symEOB] = 1
		n := rng.Intn(5000) + 1
		symbols := make([]int, n)
		for i := range symbols {
			s := rng.Intn(bwscAlphabet - 1)
			symbols[i] = s
			freq[s]++
		}
		lengths := huffmanCodeLengths(freq)
		codes := canonicalCodes(lengths)
		var w bitWriter
		for _, s := range symbols {
			w.writeBits(codes[s], uint(lengths[s]))
		}
		w.writeBits(codes[symEOB], uint(lengths[symEOB]))
		dec, err := newCanonicalDecoder(lengths)
		if err != nil {
			t.Fatal(err)
		}
		r := bitReader{buf: w.finish()}
		for i, want := range symbols {
			got, ok := dec.decode(&r)
			if !ok || got != want {
				t.Fatalf("trial %d sym %d: got %d ok=%v want %d", trial, i, got, ok, want)
			}
		}
		if got, ok := dec.decode(&r); !ok || got != symEOB {
			t.Fatalf("trial %d: EOB: got %d ok=%v", trial, got, ok)
		}
	}
}

func TestBitIO(t *testing.T) {
	var w bitWriter
	w.writeBits(0b1, 1)
	w.writeBits(0b0110, 4)
	w.writeBits(0xdeadbeef, 32)
	buf := w.finish()
	r := bitReader{buf: buf}
	read := func(n uint) uint32 {
		var v uint32
		for i := uint(0); i < n; i++ {
			v = v<<1 | r.readBit()
		}
		return v
	}
	if got := read(1); got != 1 {
		t.Errorf("bit 1: %d", got)
	}
	if got := read(4); got != 0b0110 {
		t.Errorf("bits 2-5: %b", got)
	}
	if got := read(32); got != 0xdeadbeef {
		t.Errorf("word: %x", got)
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := bitReader{buf: []byte{0xff}}
	for i := 0; i < 8; i++ {
		if r.readBit() != 1 || r.err {
			t.Fatal("first 8 bits should be 1")
		}
	}
	r.readBit()
	if !r.err {
		t.Error("reading past the end should set err")
	}
}

func TestBWSCDecompressCorrupt(t *testing.T) {
	if _, err := bwscDecompress([]byte{0, 0}, 10); err == nil {
		t.Error("short block should error")
	}
	// A well-formed header with garbage code lengths.
	bad := make([]byte, 3+bwscAlphabet+4)
	for i := 3; i < 3+bwscAlphabet; i++ {
		bad[i] = 200 // over max code length
	}
	if _, err := bwscDecompress(bad, 10); err == nil {
		t.Error("over-length codes should error")
	}
}

func TestMultiTableRoundTrip(t *testing.T) {
	// A long, regime-shifting stream: the first half is text-like, the
	// second half binary-like, so distinct Huffman tables pay off and
	// the multi format is chosen.
	rng := rand.New(rand.NewSource(29))
	data := make([]byte, 200_000)
	for i := range data[:100_000] {
		data[i] = byte('a' + rng.Intn(8))
	}
	for i := 100_000; i < len(data); i++ {
		data[i] = byte(128 + rng.Intn(64))
	}
	comp := bwscCompress(data)
	if comp[0] != bwscFormatMulti {
		t.Logf("single-table chosen (format %d); multi not cheaper here", comp[0])
	}
	got, err := bwscDecompress(comp, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-table round trip mismatch")
	}
}

func TestMultiTableBeatsSingleOnRegimeShifts(t *testing.T) {
	// Force both encodings on the same symbol stream and compare.
	rng := rand.New(rand.NewSource(31))
	data := make([]byte, 120_000)
	for i := range data[:60_000] {
		data[i] = byte('a' + rng.Intn(6))
	}
	for i := 60_000; i < len(data); i++ {
		data[i] = byte(200 + rng.Intn(40))
	}
	bwt, primary := bwtForward(data)
	syms := rle0Encode(mtfEncode(bwt))
	syms = append(syms, symEOB)
	single := encodeSingle(primary, syms)
	multi := encodeMulti(primary, syms)
	if len(multi) >= len(single) {
		t.Errorf("multi (%d) should beat single (%d) on a regime-shifting block",
			len(multi), len(single))
	}
	// And the multi stream must decode to the same symbols.
	p2, syms2, err := decodeMulti(multi)
	if err != nil || p2 != primary {
		t.Fatalf("decodeMulti: %v primary=%d", err, p2)
	}
	if len(syms2) != len(syms)-1 { // EOB stripped
		t.Fatalf("decoded %d symbols, want %d", len(syms2), len(syms)-1)
	}
	for i := range syms2 {
		if syms2[i] != syms[i] {
			t.Fatalf("symbol %d mismatch", i)
		}
	}
}

func TestDecodeMultiCorrupt(t *testing.T) {
	bad := [][]byte{
		{bwscFormatMulti},
		{bwscFormatMulti, 0, 0, 0, 9},       // table count out of range
		{bwscFormatMulti, 0, 0, 0, 2, 0x05}, // selectors truncated
		{bwscFormatMulti, 0, 0, 0, 2, 1, 0}, // tables truncated
	}
	for i, b := range bad {
		if _, _, err := decodeMulti(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
