package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// errBlockCorrupt is returned when a framed compressed block is damaged.
var errBlockCorrupt = errors.New("codec: corrupt block stream")

// blockWriter frames a stream into independently compressed blocks:
// uvarint raw length, uvarint compressed length, compressed bytes.
// It is the shared container for the block codecs (Snappy, BWSC).
type blockWriter struct {
	w        io.Writer
	buf      []byte
	size     int
	compress func(src []byte) []byte
	closed   bool
	scratch  []byte
}

func newBlockWriter(w io.Writer, blockSize int, compress func(src []byte) []byte) *blockWriter {
	return &blockWriter{w: w, size: blockSize, compress: compress}
}

func (b *blockWriter) Write(p []byte) (int, error) {
	if b.closed {
		return 0, errors.New("codec: write after close")
	}
	total := len(p)
	for len(p) > 0 {
		room := b.size - len(b.buf)
		if room == 0 {
			if err := b.flushBlock(); err != nil {
				return total - len(p), err
			}
			room = b.size
		}
		n := min(room, len(p))
		b.buf = append(b.buf, p[:n]...)
		p = p[n:]
	}
	return total, nil
}

func (b *blockWriter) flushBlock() error {
	if len(b.buf) == 0 {
		return nil
	}
	comp := b.compress(b.buf)
	b.scratch = b.scratch[:0]
	b.scratch = binary.AppendUvarint(b.scratch, uint64(len(b.buf)))
	b.scratch = binary.AppendUvarint(b.scratch, uint64(len(comp)))
	if _, err := b.w.Write(b.scratch); err != nil {
		return err
	}
	if _, err := b.w.Write(comp); err != nil {
		return err
	}
	b.buf = b.buf[:0]
	return nil
}

func (b *blockWriter) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	return b.flushBlock()
}

// blockReader decodes the stream produced by blockWriter.
type blockReader struct {
	r          io.ByteReader
	raw        io.Reader
	decompress func(src []byte, rawLen int) ([]byte, error)
	block      []byte
	pos        int
	comp       []byte
}

type byteReaderAdapter struct {
	r   io.Reader
	one [1]byte
}

func (a *byteReaderAdapter) Read(p []byte) (int, error) { return a.r.Read(p) }

func (a *byteReaderAdapter) ReadByte() (byte, error) {
	if _, err := io.ReadFull(a.r, a.one[:]); err != nil {
		return 0, err
	}
	return a.one[0], nil
}

func newBlockReader(r io.Reader, decompress func(src []byte, rawLen int) ([]byte, error)) *blockReader {
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if ok {
		return &blockReader{r: br, raw: r, decompress: decompress}
	}
	a := &byteReaderAdapter{r: r}
	return &blockReader{r: a, raw: a, decompress: decompress}
}

func (b *blockReader) Read(p []byte) (int, error) {
	for b.pos >= len(b.block) {
		if err := b.nextBlock(); err != nil {
			return 0, err
		}
	}
	n := copy(p, b.block[b.pos:])
	b.pos += n
	return n, nil
}

func (b *blockReader) nextBlock() error {
	rawLen, err := binary.ReadUvarint(b.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return errBlockCorrupt
	}
	compLen, err := binary.ReadUvarint(b.r)
	if err != nil {
		return errBlockCorrupt
	}
	if rawLen > 1<<30 || compLen > 1<<30 {
		return fmt.Errorf("%w: unreasonable block size", errBlockCorrupt)
	}
	if cap(b.comp) < int(compLen) {
		b.comp = make([]byte, compLen)
	}
	b.comp = b.comp[:compLen]
	if _, err := io.ReadFull(b.raw, b.comp); err != nil {
		return errBlockCorrupt
	}
	block, err := b.decompress(b.comp, int(rawLen))
	if err != nil {
		return err
	}
	if len(block) != int(rawLen) {
		return fmt.Errorf("%w: block decoded to %d bytes, want %d", errBlockCorrupt, len(block), rawLen)
	}
	b.block = block
	b.pos = 0
	return nil
}

func (b *blockReader) Close() error { return nil }
