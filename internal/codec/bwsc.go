package codec

import (
	"container/heap"
	"fmt"
	"io"
	"sort"
)

// BWSC ("block-sorting compressor") is a from-scratch codec standing in
// for bzip2, which the Go standard library can only decompress. It uses
// the same pipeline bzip2 does — Burrows-Wheeler transform, move-to-front,
// zero run-length encoding, Huffman coding — and therefore exhibits
// bzip2's experimental character in Table 1: the best compression ratio
// of the codec set at by far the highest CPU cost.
type BWSC struct{}

// Name implements Codec.
func (BWSC) Name() string { return "bwsc" }

// NewWriter implements Codec.
func (BWSC) NewWriter(w io.Writer) (io.WriteCloser, error) {
	// 256 KiB blocks: more BWT context buys a better ratio at slightly
	// higher CPU, the direction of bzip2's own -9. The Huffman depth
	// bound stays well under bwscMaxCodeLen (log_phi(262144) ≈ 26).
	return newBlockWriter(w, 256<<10, bwscCompress), nil
}

// NewReader implements Codec.
func (BWSC) NewReader(r io.Reader) (io.ReadCloser, error) {
	return newBlockReader(r, bwscDecompress), nil
}

// The RLE0 alphabet: runs of MTF zeros are written in bijective base 2
// with digits RUNA/RUNB, non-zero MTF symbols are shifted up by one, and
// EOB terminates the block (bzip2's scheme).
const (
	symRunA        = 0
	symRunB        = 1
	symEOB         = 257
	bwscAlphabet   = 258
	bwscMaxCodeLen = 32
)

// bwscCompress encodes one block: format byte, 3-byte primary index,
// then a single- or multi-table Huffman coding of the RLE0 symbols
// (whichever is smaller; multi-table is bzip2's refinement, see
// bwscmulti.go).
func bwscCompress(src []byte) []byte {
	bwt, primary := bwtForward(src)
	mtf := mtfEncode(bwt)
	syms := rle0Encode(mtf)
	syms = append(syms, symEOB)

	single := encodeSingle(primary, syms)
	if len(syms) >= bwscMultiMinSyms {
		if multi := encodeMulti(primary, syms); len(multi) < len(single) {
			return multi
		}
	}
	return single
}

// encodeSingle is the one-table coding: format byte, primary index,
// 258 code-length bytes, bitstream ending with EOB.
func encodeSingle(primary int, syms []int) []byte {
	freq := make([]int, bwscAlphabet)
	for _, s := range syms {
		freq[s]++
	}
	lengths := huffmanCodeLengths(freq)
	codes := canonicalCodes(lengths)

	out := []byte{bwscFormatSingle, byte(primary >> 16), byte(primary >> 8), byte(primary)}
	for _, l := range lengths {
		out = append(out, byte(l))
	}
	w := bitWriter{buf: out}
	for _, s := range syms {
		w.writeBits(codes[s], uint(lengths[s]))
	}
	return w.finish()
}

// decodeSingle reverses encodeSingle, returning the symbols before EOB.
func decodeSingle(src []byte) (primary int, syms []int, err error) {
	if len(src) < 4+bwscAlphabet {
		return 0, nil, fmt.Errorf("%w: bwsc block too short", errBlockCorrupt)
	}
	primary = int(src[1])<<16 | int(src[2])<<8 | int(src[3])
	lengths := make([]int, bwscAlphabet)
	for i := range lengths {
		lengths[i] = int(src[4+i])
		if lengths[i] > bwscMaxCodeLen {
			return 0, nil, fmt.Errorf("%w: bwsc code length %d", errBlockCorrupt, lengths[i])
		}
	}
	dec, err := newCanonicalDecoder(lengths)
	if err != nil {
		return 0, nil, err
	}
	r := bitReader{buf: src[4+bwscAlphabet:]}
	for {
		s, ok := dec.decode(&r)
		if !ok {
			return 0, nil, fmt.Errorf("%w: bwsc bitstream truncated", errBlockCorrupt)
		}
		if s == symEOB {
			return primary, syms, nil
		}
		syms = append(syms, s)
	}
}

// bwscDecompress reverses bwscCompress, dispatching on the format byte.
func bwscDecompress(src []byte, rawLen int) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("%w: empty bwsc block", errBlockCorrupt)
	}
	var (
		primary int
		syms    []int
		err     error
	)
	switch src[0] {
	case bwscFormatSingle:
		primary, syms, err = decodeSingle(src)
	case bwscFormatMulti:
		primary, syms, err = decodeMulti(src)
	default:
		return nil, fmt.Errorf("%w: bwsc format %d", errBlockCorrupt, src[0])
	}
	if err != nil {
		return nil, err
	}
	mtf, err := rle0Decode(syms, rawLen)
	if err != nil {
		return nil, err
	}
	bwt := mtfDecode(mtf)
	if primary >= len(bwt) && len(bwt) > 0 {
		return nil, fmt.Errorf("%w: bwsc primary index %d out of range", errBlockCorrupt, primary)
	}
	return bwtInverse(bwt, primary), nil
}

// rle0Encode rewrites MTF output into the RLE0 alphabet.
func rle0Encode(mtf []byte) []int {
	var out []int
	run := 0
	flush := func() {
		for run > 0 {
			if run&1 == 1 {
				out = append(out, symRunA)
				run = (run - 1) / 2
			} else {
				out = append(out, symRunB)
				run = (run - 2) / 2
			}
		}
	}
	for _, s := range mtf {
		if s == 0 {
			run++
			continue
		}
		flush()
		out = append(out, int(s)+1)
	}
	flush()
	return out
}

// rle0Decode expands RLE0 symbols back into MTF bytes.
func rle0Decode(syms []int, rawLen int) ([]byte, error) {
	out := make([]byte, 0, rawLen)
	run, weight := 0, 1
	flush := func() error {
		if run == 0 {
			return nil
		}
		if len(out)+run > rawLen {
			return fmt.Errorf("%w: bwsc zero run overflows block", errBlockCorrupt)
		}
		for i := 0; i < run; i++ {
			out = append(out, 0)
		}
		run, weight = 0, 1
		return nil
	}
	for _, s := range syms {
		switch {
		case s == symRunA:
			run += weight
			weight *= 2
		case s == symRunB:
			run += 2 * weight
			weight *= 2
		case s >= 2 && s <= 256:
			if err := flush(); err != nil {
				return nil, err
			}
			if len(out)+1 > rawLen {
				return nil, fmt.Errorf("%w: bwsc symbols overflow block", errBlockCorrupt)
			}
			out = append(out, byte(s-1))
		default:
			return nil, fmt.Errorf("%w: bwsc symbol %d out of range", errBlockCorrupt, s)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) != rawLen {
		return nil, fmt.Errorf("%w: bwsc decoded %d MTF bytes, want %d", errBlockCorrupt, len(out), rawLen)
	}
	return out, nil
}

// huffmanCodeLengths builds code lengths from symbol frequencies. Symbols
// with zero frequency get length zero. The block size bounds the maximum
// depth well below bwscMaxCodeLen.
func huffmanCodeLengths(freq []int) []int {
	lengths := make([]int, len(freq))
	type node struct {
		weight      int
		sym         int // >= 0 for leaves
		left, right int // indices into nodes for internal
	}
	var nodes []node
	h := &huffHeap{}
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, node{weight: f, sym: s, left: -1, right: -1})
			heap.Push(h, huffItem{weight: f, index: len(nodes) - 1})
		}
	}
	switch h.Len() {
	case 0:
		return lengths
	case 1:
		lengths[nodes[0].sym] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(huffItem)
		b := heap.Pop(h).(huffItem)
		nodes = append(nodes, node{weight: a.weight + b.weight, sym: -1, left: a.index, right: b.index})
		heap.Push(h, huffItem{weight: a.weight + b.weight, index: len(nodes) - 1})
	}
	root := heap.Pop(h).(huffItem).index
	// Iterative depth-first traversal assigning depths as code lengths.
	type frame struct{ idx, depth int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := nodes[f.idx]
		if n.sym >= 0 {
			lengths[n.sym] = f.depth
			continue
		}
		stack = append(stack, frame{n.left, f.depth + 1}, frame{n.right, f.depth + 1})
	}
	return lengths
}

type huffItem struct{ weight, index int }

type huffHeap []huffItem

func (h huffHeap) Len() int            { return len(h) }
func (h huffHeap) Less(i, j int) bool  { return h[i].weight < h[j].weight }
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(huffItem)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// canonicalCodes assigns canonical Huffman codes from code lengths:
// symbols sorted by (length, symbol) receive consecutive codes.
func canonicalCodes(lengths []int) []uint32 {
	codes := make([]uint32, len(lengths))
	syms := sortedByLength(lengths)
	code := uint32(0)
	prevLen := 0
	for _, s := range syms {
		l := lengths[s]
		code <<= uint(l - prevLen)
		codes[s] = code
		code++
		prevLen = l
	}
	return codes
}

func sortedByLength(lengths []int) []int {
	var syms []int
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, s)
		}
	}
	sort.Slice(syms, func(a, b int) bool {
		if lengths[syms[a]] != lengths[syms[b]] {
			return lengths[syms[a]] < lengths[syms[b]]
		}
		return syms[a] < syms[b]
	})
	return syms
}

// canonicalDecoder decodes canonical Huffman bit-by-bit using per-length
// first-code tables.
type canonicalDecoder struct {
	maxLen    int
	firstCode [bwscMaxCodeLen + 1]uint32
	count     [bwscMaxCodeLen + 1]int
	offset    [bwscMaxCodeLen + 1]int
	syms      []int
}

func newCanonicalDecoder(lengths []int) (*canonicalDecoder, error) {
	d := &canonicalDecoder{syms: sortedByLength(lengths)}
	for _, s := range d.syms {
		l := lengths[s]
		d.count[l]++
		if l > d.maxLen {
			d.maxLen = l
		}
	}
	code := uint32(0)
	idx := 0
	for l := 1; l <= d.maxLen; l++ {
		code <<= 1
		d.firstCode[l] = code
		d.offset[l] = idx
		code += uint32(d.count[l])
		idx += d.count[l]
	}
	// A full (or over-full) code would overflow: code must fit in l bits
	// at every level.
	if d.maxLen > 0 && code > 1<<uint(d.maxLen) {
		return nil, fmt.Errorf("%w: over-subscribed huffman code", errBlockCorrupt)
	}
	return d, nil
}

// decode reads one symbol; ok is false when the bitstream is exhausted.
func (d *canonicalDecoder) decode(r *bitReader) (sym int, ok bool) {
	code := uint32(0)
	for l := 1; l <= d.maxLen; l++ {
		code = code<<1 | r.readBit()
		if r.err {
			return 0, false
		}
		if d.count[l] > 0 && code-d.firstCode[l] < uint32(d.count[l]) {
			return d.syms[d.offset[l]+int(code-d.firstCode[l])], true
		}
	}
	return 0, false
}
