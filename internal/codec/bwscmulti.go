package codec

import "fmt"

// Multi-table Huffman coding, bzip2's "coding tables" refinement: the
// RLE0 symbol stream is cut into groups of 50 symbols, 2-6 Huffman
// tables are trained by a few rounds of assign-cheapest / refit (a
// one-dimensional k-means), and each group records which table encodes
// it. Skewed regions of the post-BWT stream get tables tuned to them,
// which is most of bzip2's ratio edge over a single code.
const (
	bwscGroupSize = 50
	// multi-table coding only pays for its headers beyond this many
	// symbols.
	bwscMultiMinSyms = 400
	// unusedLen is the cost penalty for symbols a table has never seen,
	// bzip2's "15 bits for unused" heuristic.
	bwscUnusedLen = 15
	// kMeansIters matches bzip2's N_ITERS.
	bwscKMeansIters = 4
)

// Block format bytes.
const (
	bwscFormatSingle = 0
	bwscFormatMulti  = 1
)

// bwscTableCount picks the table count from the symbol count, bzip2's
// thresholds.
func bwscTableCount(nSyms int) int {
	switch {
	case nSyms < 1200:
		return 2
	case nSyms < 2400:
		return 3
	case nSyms < 4800:
		return 4
	case nSyms < 9600:
		return 5
	}
	return 6
}

// encodeMulti produces the multi-table encoding of a symbol stream:
// format byte, 3-byte primary index, table count, uvarint group count,
// one selector byte per group, nTables × 258 code-length bytes, then
// the bitstream with tables switching every bwscGroupSize symbols.
func encodeMulti(primary int, syms []int) []byte {
	nTables := bwscTableCount(len(syms))
	nGroups := (len(syms) + bwscGroupSize - 1) / bwscGroupSize

	// Initial tables: split the alphabet by cumulative frequency so each
	// table starts owning roughly 1/nTables of the mass (bzip2's seed).
	freq := make([]int, bwscAlphabet)
	total := 0
	for _, s := range syms {
		freq[s]++
		total++
	}
	lengths := make([][]int, nTables)
	for t := range lengths {
		lengths[t] = make([]int, bwscAlphabet)
		lo := t * total / nTables
		hi := (t + 1) * total / nTables
		cum := 0
		for s := 0; s < bwscAlphabet; s++ {
			inRange := cum >= lo && cum < hi && freq[s] > 0
			cum += freq[s]
			if inRange {
				lengths[t][s] = 1 // cheap inside the seed range
			} else {
				lengths[t][s] = bwscUnusedLen
			}
		}
	}

	selectors := make([]byte, nGroups)
	for iter := 0; iter < bwscKMeansIters; iter++ {
		tableFreq := make([][]int, nTables)
		for t := range tableFreq {
			tableFreq[t] = make([]int, bwscAlphabet)
		}
		for g := 0; g < nGroups; g++ {
			start := g * bwscGroupSize
			end := min(start+bwscGroupSize, len(syms))
			best, bestCost := 0, int(^uint(0)>>1)
			for t := 0; t < nTables; t++ {
				cost := 0
				for _, s := range syms[start:end] {
					l := lengths[t][s]
					if l == 0 {
						l = bwscUnusedLen
					}
					cost += l
				}
				if cost < bestCost {
					best, bestCost = t, cost
				}
			}
			selectors[g] = byte(best)
			for _, s := range syms[start:end] {
				tableFreq[best][s]++
			}
		}
		for t := 0; t < nTables; t++ {
			lengths[t] = huffmanCodeLengths(tableFreq[t])
		}
	}

	codes := make([][]uint32, nTables)
	for t := range codes {
		codes[t] = canonicalCodes(lengths[t])
	}

	out := []byte{bwscFormatMulti, byte(primary >> 16), byte(primary >> 8), byte(primary)}
	out = append(out, byte(nTables))
	out = appendUvarintByteSlice(out, uint64(nGroups))
	out = append(out, selectors...)
	for t := 0; t < nTables; t++ {
		for _, l := range lengths[t] {
			out = append(out, byte(l))
		}
	}
	w := bitWriter{buf: out}
	for g := 0; g < nGroups; g++ {
		start := g * bwscGroupSize
		end := min(start+bwscGroupSize, len(syms))
		t := int(selectors[g])
		for _, s := range syms[start:end] {
			w.writeBits(codes[t][s], uint(lengths[t][s]))
		}
	}
	return w.finish()
}

// decodeMulti reverses encodeMulti, returning the RLE0 symbol stream
// (including the trailing EOB, which the caller strips).
func decodeMulti(src []byte) (primary int, syms []int, err error) {
	if len(src) < 5 {
		return 0, nil, fmt.Errorf("%w: bwsc multi block too short", errBlockCorrupt)
	}
	primary = int(src[1])<<16 | int(src[2])<<8 | int(src[3])
	nTables := int(src[4])
	if nTables < 1 || nTables > 6 {
		return 0, nil, fmt.Errorf("%w: bwsc table count %d", errBlockCorrupt, nTables)
	}
	rest := src[5:]
	nGroups, used, uerr := uvarintByteSlice(rest)
	if uerr != nil || nGroups > 1<<24 {
		return 0, nil, fmt.Errorf("%w: bwsc group count", errBlockCorrupt)
	}
	rest = rest[used:]
	if uint64(len(rest)) < nGroups {
		return 0, nil, fmt.Errorf("%w: bwsc selectors truncated", errBlockCorrupt)
	}
	selectors := rest[:nGroups]
	rest = rest[nGroups:]
	if len(rest) < nTables*bwscAlphabet {
		return 0, nil, fmt.Errorf("%w: bwsc tables truncated", errBlockCorrupt)
	}
	decs := make([]*canonicalDecoder, nTables)
	for t := 0; t < nTables; t++ {
		lengths := make([]int, bwscAlphabet)
		for i := range lengths {
			lengths[i] = int(rest[t*bwscAlphabet+i])
			if lengths[i] > bwscMaxCodeLen {
				return 0, nil, fmt.Errorf("%w: bwsc code length %d", errBlockCorrupt, lengths[i])
			}
		}
		d, derr := newCanonicalDecoder(lengths)
		if derr != nil {
			return 0, nil, derr
		}
		decs[t] = d
	}
	rest = rest[nTables*bwscAlphabet:]

	r := bitReader{buf: rest}
	for g := uint64(0); g < nGroups; g++ {
		t := int(selectors[g])
		if t >= nTables {
			return 0, nil, fmt.Errorf("%w: bwsc selector %d", errBlockCorrupt, t)
		}
		for i := 0; i < bwscGroupSize; i++ {
			s, ok := decs[t].decode(&r)
			if !ok {
				return 0, nil, fmt.Errorf("%w: bwsc multi bitstream truncated", errBlockCorrupt)
			}
			if s == symEOB {
				if g != nGroups-1 {
					return 0, nil, fmt.Errorf("%w: bwsc EOB before final group", errBlockCorrupt)
				}
				return primary, syms, nil
			}
			syms = append(syms, s)
		}
	}
	return 0, nil, fmt.Errorf("%w: bwsc multi stream missing EOB", errBlockCorrupt)
}

// appendUvarintByteSlice / uvarintByteSlice are tiny local varint
// helpers (the codec package avoids importing bytesx to stay leaf-level).
func appendUvarintByteSlice(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarintByteSlice(buf []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(buf) && i < 10; i++ {
		v |= uint64(buf[i]&0x7f) << (7 * i)
		if buf[i] < 0x80 {
			return v, i + 1, nil
		}
	}
	return 0, 0, errBlockCorrupt
}
