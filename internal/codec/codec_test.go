package codec

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	return cs
}

func roundTrip(t *testing.T, c Codec, data []byte) {
	t.Helper()
	var buf bytes.Buffer
	w, err := c.NewWriter(&buf)
	if err != nil {
		t.Fatalf("%s: NewWriter: %v", c.Name(), err)
	}
	// Write in uneven chunks to exercise block boundaries.
	for off := 0; off < len(data); {
		n := min(1000+off%777, len(data)-off)
		if _, err := w.Write(data[off : off+n]); err != nil {
			t.Fatalf("%s: Write: %v", c.Name(), err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatalf("%s: Close: %v", c.Name(), err)
	}
	r, err := c.NewReader(&buf)
	if err != nil {
		t.Fatalf("%s: NewReader: %v", c.Name(), err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("%s: ReadAll: %v", c.Name(), err)
	}
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatalf("%s: round trip mismatch: %d bytes in, %d out", c.Name(), len(data), len(got))
	}
}

func testInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 200_000)
	rng.Read(random)
	lowEntropy := make([]byte, 150_000)
	for i := range lowEntropy {
		lowEntropy[i] = byte(rng.Intn(4)) + 'a'
	}
	return map[string][]byte{
		"empty":      {},
		"one":        {42},
		"short":      []byte("hello world"),
		"zeros":      make([]byte, 100_000),
		"periodic":   bytes.Repeat([]byte("abcabc"), 30_000),
		"text":       []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 4000)),
		"random":     random,
		"lowEntropy": lowEntropy,
		"allBytes": func() []byte {
			b := make([]byte, 256*100)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, c := range allCodecs(t) {
		for name, data := range testInputs() {
			t.Run(c.Name()+"/"+name, func(t *testing.T) { roundTrip(t, c, data) })
		}
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		f := func(data []byte) bool {
			var buf bytes.Buffer
			w, err := c.NewWriter(&buf)
			if err != nil {
				return false
			}
			if _, err := w.Write(data); err != nil {
				return false
			}
			if err := w.Close(); err != nil {
				return false
			}
			r, err := c.NewReader(&buf)
			if err != nil {
				return false
			}
			got, err := io.ReadAll(r)
			if err != nil {
				return false
			}
			return bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("lzma"); err == nil {
		t.Error("expected error for unknown codec")
	}
	if c, err := ByName(""); err != nil || c.Name() != "none" {
		t.Errorf("empty name should map to identity, got %v, %v", c, err)
	}
}

func TestCompressionCharacter(t *testing.T) {
	// On realistic (Zipfian word-frequency) text BWSC should achieve the
	// best ratio of the codec set and Snappy the worst non-trivial one,
	// mirroring Table 1's bzip2/snappy spectrum.
	data := zipfText(300_000)
	size := func(name string) int {
		c, _ := ByName(name)
		var buf bytes.Buffer
		w, _ := c.NewWriter(&buf)
		w.Write(data)
		w.Close()
		return buf.Len()
	}
	bwsc, gz, sn := size("bwsc"), size("gzip"), size("snappy")
	if bwsc >= gz {
		t.Errorf("BWSC (%d) should beat gzip (%d) on redundant text", bwsc, gz)
	}
	if sn >= len(data) {
		t.Errorf("snappy (%d) should compress redundant text (%d raw)", sn, len(data))
	}
	if gz >= sn {
		t.Errorf("gzip (%d) should beat snappy (%d)", gz, sn)
	}
}

func TestBlockStreamCorrupt(t *testing.T) {
	c := Snappy{}
	var buf bytes.Buffer
	w, _ := c.NewWriter(&buf)
	w.Write(bytes.Repeat([]byte("abc"), 1000))
	w.Close()
	data := buf.Bytes()

	// Truncated stream.
	r, _ := c.NewReader(bytes.NewReader(data[:len(data)-3]))
	if _, err := io.ReadAll(r); err == nil {
		t.Error("truncated stream should error")
	}

	// Corrupting the frame's raw-length varint is always detected: the
	// block's declared length no longer matches.
	mut := append([]byte(nil), data...)
	mut[0] ^= 0x01
	r2, _ := c.NewReader(bytes.NewReader(mut))
	if _, err := io.ReadAll(r2); err == nil {
		t.Error("corrupted frame length not detected")
	}
}

func zipfText(size int) []byte {
	rng := rand.New(rand.NewSource(1))
	vocab := make([]string, 2000)
	for i := range vocab {
		n := rng.Intn(8) + 3
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		vocab[i] = string(b)
	}
	z := rand.NewZipf(rng, 1.2, 1, uint64(len(vocab)-1))
	var sb strings.Builder
	for sb.Len() < size {
		sb.WriteString(vocab[z.Uint64()])
		sb.WriteByte(' ')
	}
	return []byte(sb.String())
}

func TestSnappyPeriodicCompresses(t *testing.T) {
	// Overlapping copies must make trivially periodic data tiny: one
	// literal plus a chain of 64-byte copy elements (~3 bytes per 64).
	data := bytes.Repeat([]byte("abc"), 1000)
	comp := snappyCompress(data)
	if len(comp) > 200 {
		t.Errorf("snappy on periodic data: %d bytes, want < 200", len(comp))
	}
}

func TestWriteAfterClose(t *testing.T) {
	for _, c := range []Codec{Snappy{}, BWSC{}} {
		var buf bytes.Buffer
		w, _ := c.NewWriter(&buf)
		w.Close()
		if _, err := w.Write([]byte("x")); err == nil {
			t.Errorf("%s: write after close should fail", c.Name())
		}
		if err := w.Close(); err != nil {
			t.Errorf("%s: double close: %v", c.Name(), err)
		}
	}
}
