package codec

import "sort"

// bwtForward computes the Burrows-Wheeler transform of s over its
// cyclic rotations, returning the transformed bytes and the primary
// index (the row of the sorted rotation matrix holding the original
// string). Rotation order is computed by prefix doubling in
// O(n log^2 n), which is robust against degenerate (highly repetitive)
// blocks where naive rotation sorting is quadratic.
func bwtForward(s []byte) (bwt []byte, primary int) {
	n := len(s)
	if n == 0 {
		return nil, 0
	}
	rank := make([]int, n)
	for i, c := range s {
		rank[i] = int(c)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	tmp := make([]int, n)
	for k := 1; k < n; k *= 2 {
		key := func(i int) (int, int) { return rank[i], rank[(i+k)%n] }
		sort.Slice(idx, func(a, b int) bool {
			r1a, r2a := key(idx[a])
			r1b, r2b := key(idx[b])
			if r1a != r1b {
				return r1a < r1b
			}
			return r2a < r2b
		})
		tmp[idx[0]] = 0
		distinct := 1
		for i := 1; i < n; i++ {
			r1p, r2p := key(idx[i-1])
			r1c, r2c := key(idx[i])
			tmp[idx[i]] = tmp[idx[i-1]]
			if r1p != r1c || r2p != r2c {
				tmp[idx[i]]++
				distinct++
			}
		}
		copy(rank, tmp)
		if distinct == n {
			break
		}
	}
	// Ties that remain correspond to identical rotations (periodic
	// blocks); any consistent order yields an invertible transform, so a
	// final index sort within equal ranks is used for determinism.
	sort.Slice(idx, func(a, b int) bool {
		if rank[idx[a]] != rank[idx[b]] {
			return rank[idx[a]] < rank[idx[b]]
		}
		return idx[a] < idx[b]
	})
	bwt = make([]byte, n)
	for j, i := range idx {
		bwt[j] = s[(i+n-1)%n]
		if i == 0 {
			primary = j
		}
	}
	return bwt, primary
}

// bwtInverse reverses bwtForward using the classic LF mapping.
func bwtInverse(bwt []byte, primary int) []byte {
	n := len(bwt)
	if n == 0 {
		return nil
	}
	var count [256]int
	for _, c := range bwt {
		count[c]++
	}
	var base [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		base[c] = sum
		sum += count[c]
	}
	lf := make([]int, n)
	var occ [256]int
	for i, c := range bwt {
		lf[i] = base[c] + occ[c]
		occ[c]++
	}
	out := make([]byte, n)
	i := primary
	for j := n - 1; j >= 0; j-- {
		out[j] = bwt[i]
		i = lf[i]
	}
	return out
}

// mtfEncode move-to-front encodes s in place of a fresh slice.
func mtfEncode(s []byte) []byte {
	var alpha [256]byte
	for i := range alpha {
		alpha[i] = byte(i)
	}
	out := make([]byte, len(s))
	for i, c := range s {
		var j int
		for alpha[j] != c {
			j++
		}
		out[i] = byte(j)
		copy(alpha[1:j+1], alpha[:j])
		alpha[0] = c
	}
	return out
}

// mtfDecode reverses mtfEncode.
func mtfDecode(s []byte) []byte {
	var alpha [256]byte
	for i := range alpha {
		alpha[i] = byte(i)
	}
	out := make([]byte, len(s))
	for i, j := range s {
		c := alpha[j]
		out[i] = c
		copy(alpha[1:int(j)+1], alpha[:j])
		alpha[0] = c
	}
	return out
}
