// Package codec provides the map-output compression codecs used by the
// engine and the Table 1 experiment: identity (none), DEFLATE and gzip
// from the standard library, plus two codecs written from scratch — a
// Snappy-compatible LZ codec (fast, modest ratio) and BWSC, a
// block-sorting codec (BWT + MTF + RLE0 + canonical Huffman) standing in
// for bzip2 (slow, high ratio).
package codec

import (
	"compress/flate"
	"compress/gzip"
	"fmt"
	"io"
)

// Codec turns a raw stream into a compressed stream and back.
type Codec interface {
	// Name identifies the codec ("none", "gzip", ...).
	Name() string
	// NewWriter wraps w; data written to the result is compressed into w.
	// The result must be closed to flush.
	NewWriter(w io.Writer) (io.WriteCloser, error)
	// NewReader wraps r, decompressing the stream produced by NewWriter.
	NewReader(r io.Reader) (io.ReadCloser, error)
}

// ByName returns the codec registered under name.
func ByName(name string) (Codec, error) {
	switch name {
	case "", "none", "identity":
		return Identity{}, nil
	case "deflate":
		return Deflate{}, nil
	case "gzip":
		return Gzip{}, nil
	case "snappy":
		return Snappy{}, nil
	case "bwsc", "bzip2":
		return BWSC{}, nil
	}
	return nil, fmt.Errorf("codec: unknown codec %q", name)
}

// Names lists all registered codec names.
func Names() []string { return []string{"none", "deflate", "gzip", "snappy", "bwsc"} }

// Identity is the no-op codec.
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "none" }

// NewWriter implements Codec.
func (Identity) NewWriter(w io.Writer) (io.WriteCloser, error) {
	return nopWriteCloser{w}, nil
}

// NewReader implements Codec.
func (Identity) NewReader(r io.Reader) (io.ReadCloser, error) {
	return io.NopCloser(r), nil
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// Deflate is raw DEFLATE at the default compression level.
type Deflate struct{}

// Name implements Codec.
func (Deflate) Name() string { return "deflate" }

// NewWriter implements Codec.
func (Deflate) NewWriter(w io.Writer) (io.WriteCloser, error) {
	return flate.NewWriter(w, flate.DefaultCompression)
}

// NewReader implements Codec.
func (Deflate) NewReader(r io.Reader) (io.ReadCloser, error) {
	return flate.NewReader(r), nil
}

// Gzip is DEFLATE with the gzip container, mirroring Hadoop's GzipCodec.
type Gzip struct{}

// Name implements Codec.
func (Gzip) Name() string { return "gzip" }

// NewWriter implements Codec.
func (Gzip) NewWriter(w io.Writer) (io.WriteCloser, error) {
	return gzip.NewWriter(w), nil
}

// NewReader implements Codec.
func (Gzip) NewReader(r io.Reader) (io.ReadCloser, error) {
	return gzip.NewReader(r)
}
