package codec

import (
	"bytes"
	"io"
	"testing"
)

// benchData approximates map output: sorted, prefix-redundant framed
// records, the stream the codecs compress in real jobs.
func benchData() []byte {
	return zipfText(1 << 20)
}

func benchCompress(b *testing.B, c Codec) {
	data := benchData()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := c.NewWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(buf.Len())/float64(len(data)), "ratio")
		}
	}
}

func benchDecompress(b *testing.B, c Codec) {
	data := benchData()
	var buf bytes.Buffer
	w, _ := c.NewWriter(&buf)
	w.Write(data)
	w.Close()
	comp := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.NewReader(bytes.NewReader(comp))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressGzip(b *testing.B)    { benchCompress(b, Gzip{}) }
func BenchmarkCompressDeflate(b *testing.B) { benchCompress(b, Deflate{}) }
func BenchmarkCompressSnappy(b *testing.B)  { benchCompress(b, Snappy{}) }
func BenchmarkCompressBWSC(b *testing.B)    { benchCompress(b, BWSC{}) }

func BenchmarkDecompressGzip(b *testing.B)   { benchDecompress(b, Gzip{}) }
func BenchmarkDecompressSnappy(b *testing.B) { benchDecompress(b, Snappy{}) }
func BenchmarkDecompressBWSC(b *testing.B)   { benchDecompress(b, BWSC{}) }

func BenchmarkBWTForward(b *testing.B) {
	data := zipfText(64 << 10)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		bwtForward(data)
	}
}
