package codec

// bitWriter packs MSB-first bit strings into a byte slice.
type bitWriter struct {
	buf   []byte
	acc   uint64
	nbits uint
}

// writeBits appends the low n bits of code, most significant bit first.
func (w *bitWriter) writeBits(code uint32, n uint) {
	w.acc = w.acc<<n | uint64(code)&((1<<n)-1)
	w.nbits += n
	for w.nbits >= 8 {
		w.nbits -= 8
		w.buf = append(w.buf, byte(w.acc>>w.nbits))
	}
}

// finish pads the final partial byte with zero bits and returns the buffer.
func (w *bitWriter) finish() []byte {
	if w.nbits > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nbits)))
		w.nbits = 0
	}
	return w.buf
}

// bitReader consumes MSB-first bit strings from a byte slice.
type bitReader struct {
	buf   []byte
	pos   int
	acc   uint64
	nbits uint
	err   bool
}

// readBit returns the next bit, flagging err on exhaustion.
func (r *bitReader) readBit() uint32 {
	if r.nbits == 0 {
		if r.pos >= len(r.buf) {
			r.err = true
			return 0
		}
		r.acc = uint64(r.buf[r.pos])
		r.pos++
		r.nbits = 8
	}
	r.nbits--
	return uint32(r.acc>>r.nbits) & 1
}
