package codec

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Snappy is an LZ77-family codec implementing the Snappy block format
// from scratch: a greedy matcher over a 4-byte hash table emitting
// literal and copy elements. It is the "fast, modest compression" point
// in the codec spectrum of Table 1. Blocks are framed by the shared
// container in blockio.go (Snappy itself defines only a block format).
type Snappy struct{}

// Name implements Codec.
func (Snappy) Name() string { return "snappy" }

// NewWriter implements Codec.
func (Snappy) NewWriter(w io.Writer) (io.WriteCloser, error) {
	return newBlockWriter(w, 64<<10, snappyCompress), nil
}

// NewReader implements Codec.
func (Snappy) NewReader(r io.Reader) (io.ReadCloser, error) {
	return newBlockReader(r, func(src []byte, rawLen int) ([]byte, error) {
		return snappyDecompress(src, rawLen)
	}), nil
}

const (
	snappyTagLiteral = 0x00
	snappyTagCopy1   = 0x01
	snappyTagCopy2   = 0x02
	snappyTagCopy4   = 0x03

	snappyHashBits  = 14
	snappyHashShift = 32 - snappyHashBits
)

func snappyHash(u uint32) uint32 { return (u * 0x1e35a7bd) >> snappyHashShift }

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// AppendSnappyBlock appends src compressed as one self-framed Snappy
// block (uvarint raw length + literal/copy elements) to dst. The block
// carries its own raw length, so a transport exchanging blocks only
// needs to delimit the compressed bytes. This is the unit the shuffle
// wire compression sends per chunk.
func AppendSnappyBlock(dst, src []byte) []byte {
	return snappyAppendBlock(dst, src)
}

// DecompressSnappyBlock decodes one block produced by
// AppendSnappyBlock, using the raw length carried in its preamble.
func DecompressSnappyBlock(src []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(src)
	if n <= 0 || rawLen > 1<<30 {
		return nil, fmt.Errorf("%w: bad snappy preamble", errBlockCorrupt)
	}
	return snappyDecompress(src, int(rawLen))
}

// snappyCompress encodes src as one Snappy block: a uvarint with the
// uncompressed length followed by literal/copy elements.
func snappyCompress(src []byte) []byte { return snappyAppendBlock(nil, src) }

func snappyAppendBlock(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) < 16 {
		return snappyEmitLiteral(dst, src)
	}

	var table [1 << snappyHashBits]int32
	for i := range table {
		table[i] = -1
	}

	// sLimit leaves room so 4-byte loads never run past the end.
	sLimit := len(src) - 4
	lit := 0 // start of pending literal run
	s := 0
	for s <= sLimit {
		h := snappyHash(load32(src, s))
		cand := table[h]
		table[h] = int32(s)
		if cand >= 0 && s-int(cand) <= 1<<16-1 && load32(src, int(cand)) == load32(src, s) {
			// Extend the match forward. The match may overlap the
			// current position (offset < length); the decoder copies
			// byte by byte, so such matches are valid and essential for
			// periodic data.
			matchLen := 4
			for s+matchLen < len(src) && src[int(cand)+matchLen] == src[s+matchLen] {
				matchLen++
			}
			if lit < s {
				dst = snappyEmitLiteral(dst, src[lit:s])
			}
			dst = snappyEmitCopy(dst, s-int(cand), matchLen)
			s += matchLen
			lit = s
			continue
		}
		s++
	}
	if lit < len(src) {
		dst = snappyEmitLiteral(dst, src[lit:])
	}
	return dst
}

func snappyEmitLiteral(dst, lit []byte) []byte {
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|snappyTagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|snappyTagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|snappyTagLiteral, byte(n), byte(n>>8))
	default:
		dst = append(dst, 62<<2|snappyTagLiteral, byte(n), byte(n>>8), byte(n>>16))
	}
	return append(dst, lit...)
}

// snappyEmitCopy emits copy elements covering length bytes at the given
// offset (1 <= offset < 1<<16). Long matches are split into 64-byte
// copy-2 elements.
func snappyEmitCopy(dst []byte, offset, length int) []byte {
	for length > 64 {
		dst = append(dst, 63<<2|snappyTagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	// Prefer the compact copy-1 form when it fits.
	if 4 <= length && length <= 11 && offset < 1<<11 {
		return append(dst,
			byte(offset>>8)<<5|byte(length-4)<<2|snappyTagCopy1,
			byte(offset))
	}
	return append(dst, byte(length-1)<<2|snappyTagCopy2, byte(offset), byte(offset>>8))
}

// snappyDecompress decodes one Snappy block.
func snappyDecompress(src []byte, rawLen int) ([]byte, error) {
	declared, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad snappy preamble", errBlockCorrupt)
	}
	if int(declared) != rawLen {
		return nil, fmt.Errorf("%w: snappy preamble %d != frame %d", errBlockCorrupt, declared, rawLen)
	}
	src = src[n:]
	dst := make([]byte, 0, rawLen)
	for len(src) > 0 {
		tag := src[0]
		var offset, length int
		switch tag & 0x03 {
		case snappyTagLiteral:
			litLen := int(tag >> 2)
			hdr := 1
			switch {
			case litLen < 60:
				litLen++
			case litLen == 60:
				if len(src) < 2 {
					return nil, errBlockCorrupt
				}
				litLen = int(src[1]) + 1
				hdr = 2
			case litLen == 61:
				if len(src) < 3 {
					return nil, errBlockCorrupt
				}
				litLen = int(src[1]) | int(src[2])<<8
				litLen++
				hdr = 3
			case litLen == 62:
				if len(src) < 4 {
					return nil, errBlockCorrupt
				}
				litLen = int(src[1]) | int(src[2])<<8 | int(src[3])<<16
				litLen++
				hdr = 4
			default:
				if len(src) < 5 {
					return nil, errBlockCorrupt
				}
				litLen = int(src[1]) | int(src[2])<<8 | int(src[3])<<16 | int(src[4])<<24
				litLen++
				hdr = 5
			}
			if len(src) < hdr+litLen {
				return nil, errBlockCorrupt
			}
			dst = append(dst, src[hdr:hdr+litLen]...)
			src = src[hdr+litLen:]
			continue
		case snappyTagCopy1:
			if len(src) < 2 {
				return nil, errBlockCorrupt
			}
			length = 4 + int(tag>>2)&0x07
			offset = int(tag&0xe0)<<3 | int(src[1])
			src = src[2:]
		case snappyTagCopy2:
			if len(src) < 3 {
				return nil, errBlockCorrupt
			}
			length = 1 + int(tag>>2)
			offset = int(src[1]) | int(src[2])<<8
			src = src[3:]
		case snappyTagCopy4:
			if len(src) < 5 {
				return nil, errBlockCorrupt
			}
			length = 1 + int(tag>>2)
			offset = int(src[1]) | int(src[2])<<8 | int(src[3])<<16 | int(src[4])<<24
			src = src[5:]
		}
		if offset <= 0 || offset > len(dst) {
			return nil, fmt.Errorf("%w: snappy copy offset %d past %d decoded bytes", errBlockCorrupt, offset, len(dst))
		}
		// Overlapping copies must proceed byte by byte.
		for i := 0; i < length; i++ {
			dst = append(dst, dst[len(dst)-offset])
		}
	}
	if len(dst) != rawLen {
		return nil, fmt.Errorf("%w: snappy decoded %d bytes, want %d", errBlockCorrupt, len(dst), rawLen)
	}
	return dst, nil
}
