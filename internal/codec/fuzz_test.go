package codec

import (
	"bytes"
	"io"
	"testing"
)

// fuzzRoundTrip checks that arbitrary input survives a compress/
// decompress cycle, and that arbitrary *compressed* input never panics
// the decoder.
func fuzzRoundTrip(f *testing.F, c Codec) {
	f.Add([]byte{})
	f.Add([]byte("hello world hello world"))
	f.Add(bytes.Repeat([]byte{0}, 1000))
	f.Add(bytes.Repeat([]byte("ab"), 500))
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf bytes.Buffer
		w, err := c.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := c.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(data), len(got))
		}

		// Treat the input as a (likely corrupt) compressed stream: the
		// decoder must error or succeed, never panic.
		r2, err := c.NewReader(bytes.NewReader(data))
		if err == nil {
			io.Copy(io.Discard, r2)
			r2.Close()
		}
	})
}

func FuzzSnappy(f *testing.F) { fuzzRoundTrip(f, Snappy{}) }
func FuzzBWSC(f *testing.F)   { fuzzRoundTrip(f, BWSC{}) }

// FuzzSnappyDecompressBlock hammers the raw block decoder.
func FuzzSnappyDecompressBlock(f *testing.F) {
	f.Add(snappyCompress([]byte("some literal data")), 17)
	f.Add([]byte{0x05, 0x10, 'a'}, 5)
	f.Fuzz(func(t *testing.T, data []byte, rawLen int) {
		if rawLen < 0 || rawLen > 1<<20 {
			return
		}
		snappyDecompress(data, rawLen) // must not panic
	})
}

// FuzzBWSCDecompressBlock hammers the raw block decoder.
func FuzzBWSCDecompressBlock(f *testing.F) {
	f.Add(bwscCompress([]byte("block sorting compressor")), 24)
	f.Fuzz(func(t *testing.T, data []byte, rawLen int) {
		if rawLen < 0 || rawLen > 1<<20 {
			return
		}
		bwscDecompress(data, rawLen) // must not panic
	})
}
