package anticombine

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mr"
)

// FuzzDecodeValue drives the wire decoder with arbitrary bytes: it must
// never panic, and whatever decodes must re-encode to the same bytes
// (decode∘encode is the identity on valid inputs).
func FuzzDecodeValue(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendPlainValue(nil, []byte("value")))
	f.Add(AppendEagerValue(nil, [][]byte{[]byte("k1"), []byte("k2")}, []byte("v")))
	f.Add(AppendLazyValue(nil, []byte("ik"), []byte("iv")))
	f.Add([]byte{EncEager, 0xff, 0xff, 0xff})
	f.Add([]byte{EncLazy, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeValue(data)
		if err != nil {
			return
		}
		var re []byte
		switch dec.Enc {
		case EncPlain:
			re = AppendPlainValue(nil, dec.Value)
		case EncEager:
			re = AppendEagerValue(nil, dec.OtherKeys, dec.Value)
		case EncLazy:
			re = AppendLazyValue(nil, dec.InputKey, dec.InputValue)
		default:
			t.Fatalf("impossible flag %d", dec.Enc)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch: %x -> %x", data, re)
		}
	})
}

// TestReducerRejectsUnencodedStream wires the AntiReducer behind a
// mapper that was NOT transformed — the reduce phase then sees raw
// records instead of encoded ones and must fail with a decoding error
// rather than panic or fabricate output. (The paper's transformation is
// all-or-nothing; this guards against half-wired configurations.)
func TestReducerRejectsUnencodedStream(t *testing.T) {
	base := prefixJob(nil, 2)
	wrapped := Wrap(prefixJob(nil, 2), AdaptiveInf())
	// Sabotage: original mapper, anti reducer.
	mismatched := *wrapped
	mismatched.NewMapper = base.NewMapper
	_, err := mr.Run(&mismatched, queries(20))
	if err == nil {
		t.Fatal("mismatched pipeline should fail")
	}
	if !errors.Is(err, ErrBadEncoding) {
		// Raw bytes may coincidentally parse as a valid encoding and
		// fail later; any error is acceptable, silent success is not.
		t.Logf("failed with non-encoding error (acceptable): %v", err)
	}
}
