package anticombine

import (
	"repro/internal/monoid"
	"repro/internal/mr"
)

// WrapMonoid derives the job's combiner from a monoid declaration and
// then applies the Anti-Combining transformation — one declaration
// yields both the classic combiner (kept in the map phase when
// opts.MapCombiner / the paper's flag C is set) and the EagerSH
// partial-merge path, which collapses Shared occurrences in the reduce
// phase through the same derived combiner. The monoid's laws (checked
// by monoid.CheckLaws in the workload test suites) are exactly the
// precondition both uses rely on: partial merges must reassociate and,
// for cross-worker recombination, commute.
func WrapMonoid(job *mr.Job, m monoid.Monoid, opts Options) *mr.Job {
	w := *job
	w.NewCombiner = monoid.Combiner(m)
	return Wrap(&w, opts)
}
