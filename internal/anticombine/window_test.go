package anticombine

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/mr"
	"repro/internal/workloads/wordcount"
)

func TestCrossCallWindowEquivalence(t *testing.T) {
	// The windowed extension must still compute the right answer,
	// including when windows straddle splits unevenly.
	for _, window := range []int{2, 7, 1000} {
		job, splits := prefixJob(nil, 4), queries(150)
		original, err := mr.Run(job, splits)
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err := mr.Run(Wrap(prefixJob(nil, 4), Options{
			Strategy:        Adaptive,
			CrossCallWindow: window,
		}), queries(150))
		if err != nil {
			t.Fatal(err)
		}
		assertSameOutput(t, original, wrapped)
	}
}

func TestCrossCallWindowWithCombinerEquivalence(t *testing.T) {
	job, splits := countJob(), queries(200)
	original, err := mr.Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := mr.Run(Wrap(countJob(), Options{
		Strategy:        Adaptive,
		CrossCallWindow: 16,
		MapCombiner:     true,
	}), queries(200))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, original, wrapped)
}

func TestCrossCallWindowSharesAcrossCalls(t *testing.T) {
	// WordCount is the paper's motivating case for cross-call sharing:
	// every record's value is "1", so a window of W lines collapses into
	// one eager record per partition instead of W.
	text := datagen.NewRandomText(datagen.RandomTextConfig{
		Seed: 91, Lines: 400, WordsPerLine: 10, VocabWords: 5000,
	})
	run := func(window int) int64 {
		job := wordcount.NewJob(4)
		job.NewCombiner = nil // isolate the encoding effect
		res, err := mr.Run(Wrap(job, Options{
			Strategy:        EagerOnly,
			CrossCallWindow: window,
		}), wordcount.Splits(text, 4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.MapOutputRecords
	}
	perCall := run(0)
	windowed := run(32)
	if windowed*4 > perCall {
		t.Errorf("window of 32 calls emitted %d records vs %d per-call; want >=4x fewer",
			windowed, perCall)
	}
}

func TestCrossCallWindowBytesNeverWorse(t *testing.T) {
	// Windowed eager encoding can only merge more groups, never split
	// them, so map output bytes must not grow.
	job, _ := prefixJob(nil, 3), queries(100)
	base, err := mr.Run(Wrap(job, Adaptive0()), queries(100))
	if err != nil {
		t.Fatal(err)
	}
	win, err := mr.Run(Wrap(prefixJob(nil, 3), Options{
		Strategy:        EagerOnly,
		CrossCallWindow: 64,
	}), queries(100))
	if err != nil {
		t.Fatal(err)
	}
	if win.Stats.MapOutputBytes > base.Stats.MapOutputBytes {
		t.Errorf("windowed bytes %d exceed per-call eager %d",
			win.Stats.MapOutputBytes, base.Stats.MapOutputBytes)
	}
}
