package anticombine

import "time"

// Strategy selects which encodings the AntiMapper may use.
type Strategy int

const (
	// Adaptive picks per Map call and per partition whichever encoding
	// minimizes transferred bytes, subject to the cost threshold T
	// (the paper's AdaptiveSH).
	Adaptive Strategy = iota
	// EagerOnly disables LazySH — the paper's pure EagerSH runs, and
	// what threshold T = 0 means ("completely avoid any duplicate Map
	// and getPartition calls").
	EagerOnly
	// LazyOnly forces LazySH for every partition — the paper's pure
	// LazySH runs.
	LazyOnly
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Adaptive:
		return "adaptive"
	case EagerOnly:
		return "eager"
	case LazyOnly:
		return "lazy"
	}
	return "unknown"
}

// Options tunes the Anti-Combining transformation. The zero value is the
// paper's Adaptive-∞: free per-partition choice with no CPU threshold,
// map combiner off, Shared combine on when the job has a combiner.
type Options struct {
	// Strategy restricts the encodings considered.
	Strategy Strategy
	// T is the runtime cost threshold of §6.1: when
	// (mapCost + partitionCost) × touchedPartitions exceeds T, LazySH is
	// disabled for that Map call, bounding duplicated CPU on reducers.
	// T == 0 means unlimited (Adaptive-∞); use Strategy EagerOnly for the
	// paper's T = 0 (Adaptive-0).
	T time.Duration
	// MapCombiner is the paper's flag C: keep the (transformed) combiner
	// in the map phase. Off by default because an ineffective combiner
	// merely decodes — undoes — Anti-Combining (§6.2).
	MapCombiner bool
	// DisableSharedCombine turns off combine-on-insert in the Shared
	// structure even when the job has a combiner (§5 recommends it on).
	DisableSharedCombine bool
	// SharedMemLimitBytes caps Shared's in-memory size before spilling.
	// Defaults to 1 MiB.
	SharedMemLimitBytes int
	// SharedMergeFactor caps Shared spill runs before merging.
	// Defaults to 10.
	SharedMergeFactor int
	// CrossCallWindow > 1 enables the paper's future-work extension
	// (§9): EagerSH sharing across up to this many consecutive Map
	// calls of the same task, so identical values from different input
	// records collapse too. Within a window LazySH is unavailable
	// (there is no single input record to re-execute), so windows
	// encode eagerly; 0 or 1 disables the window.
	CrossCallWindow int
	// UniformChoice makes one eager-vs-lazy decision per Map call
	// instead of per partition. §6.1 argues per-partition flexibility
	// enables greater data reduction; this flag exists for the ablation
	// benchmark that quantifies that argument.
	UniformChoice bool
}

// AdaptiveInf returns the Adaptive-∞ configuration.
func AdaptiveInf() Options { return Options{Strategy: Adaptive} }

// Adaptive0 returns the Adaptive-0 configuration (T = 0, EagerSH only).
func Adaptive0() Options { return Options{Strategy: EagerOnly} }

// AdaptiveAlpha returns the paper's Adaptive-α configuration with its
// 400 µs runtime threshold.
func AdaptiveAlpha() Options { return Options{Strategy: Adaptive, T: 400 * time.Microsecond} }
