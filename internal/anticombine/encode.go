// Package anticombine implements Anti-Combining (Okcan & Riedewald,
// SIGMOD 2014): an adaptive runtime optimization that reduces
// mapper-to-reducer data transfer by shifting mapper work to the
// reducers. Wrap transforms any mr.Job — treating its Mapper, Reducer,
// Combiner and Partitioner as black boxes, the Go analogue of the
// paper's purely syntactic class rewrite — so that each Map call's
// output is encoded per reduce partition with whichever of the
// strategies is cheapest to ship:
//
//   - Plain:   the record itself plus a one-byte flag (EagerSH's
//     degenerate case with an empty key set);
//   - EagerSH: records sharing a value within one partition collapse
//     into a single record keyed by the minimal key, the remaining keys
//     riding in the value component;
//   - LazySH:  the Map *input* record is sent once per touched
//     partition, keyed by that partition's minimal output key, and Map
//     is re-executed on the reducer to regenerate the output.
//
// A reduce-task-level Shared structure carries decoded records between
// Reduce calls, draining in key order so the original Reduce sees
// exactly the groups it would have seen, in the same order.
package anticombine

import (
	"errors"
	"fmt"

	"repro/internal/bytesx"
)

// Encoding flags stored as the first byte of every encoded value
// component — the "few extra bits" §7.1 charges to AdaptiveSH.
const (
	// EncPlain marks an unshared record: flag + original value.
	EncPlain byte = 0
	// EncEager marks an EagerSH record: flag + uvarint key count +
	// length-prefixed other keys + the shared value.
	EncEager byte = 1
	// EncLazy marks a LazySH record: flag + length-prefixed Map input
	// key + Map input value.
	EncLazy byte = 2
)

// ErrBadEncoding reports a value component that cannot be decoded.
var ErrBadEncoding = errors.New("anticombine: bad encoded value")

// AppendPlainValue encodes an unshared value.
func AppendPlainValue(dst, value []byte) []byte {
	dst = append(dst, EncPlain)
	return append(dst, value...)
}

// PlainValueSize reports the encoded size of a plain value component.
func PlainValueSize(value []byte) int { return 1 + len(value) }

// AppendEagerValue encodes a value shared by the representative key and
// otherKeys. An empty otherKeys list is legal and equivalent to plain.
func AppendEagerValue(dst []byte, otherKeys [][]byte, value []byte) []byte {
	dst = append(dst, EncEager)
	dst = bytesx.AppendUvarint(dst, uint64(len(otherKeys)))
	for _, k := range otherKeys {
		dst = bytesx.AppendBytes(dst, k)
	}
	return append(dst, value...)
}

// EagerValueSize reports the encoded size of an EagerSH value component.
func EagerValueSize(otherKeys [][]byte, value []byte) int {
	n := 1 + bytesx.UvarintLen(uint64(len(otherKeys)))
	for _, k := range otherKeys {
		n += bytesx.UvarintLen(uint64(len(k))) + len(k)
	}
	return n + len(value)
}

// AppendLazyValue encodes a Map input record for reducer-side
// re-execution.
func AppendLazyValue(dst, inputKey, inputValue []byte) []byte {
	dst = append(dst, EncLazy)
	dst = bytesx.AppendBytes(dst, inputKey)
	return append(dst, inputValue...)
}

// LazyValueSize reports the encoded size of a LazySH value component.
func LazyValueSize(inputKey, inputValue []byte) int {
	return 1 + bytesx.UvarintLen(uint64(len(inputKey))) + len(inputKey) + len(inputValue)
}

// Decoded is the parsed form of an encoded value component. All byte
// slices alias the decoded buffer.
type Decoded struct {
	Enc byte
	// Value is the (shared) value for Plain and Eager records.
	Value []byte
	// OtherKeys are the non-representative keys of an Eager record.
	OtherKeys [][]byte
	// InputKey and InputValue are the Map input of a Lazy record.
	InputKey   []byte
	InputValue []byte
}

// DecodeValue parses an encoded value component.
func DecodeValue(buf []byte) (Decoded, error) {
	if len(buf) == 0 {
		return Decoded{}, fmt.Errorf("%w: empty", ErrBadEncoding)
	}
	switch buf[0] {
	case EncPlain:
		return Decoded{Enc: EncPlain, Value: buf[1:]}, nil
	case EncEager:
		rest := buf[1:]
		n, used, err := bytesx.Uvarint(rest)
		if err != nil {
			return Decoded{}, fmt.Errorf("%w: eager key count: %v", ErrBadEncoding, err)
		}
		rest = rest[used:]
		if n > uint64(len(rest)) {
			return Decoded{}, fmt.Errorf("%w: eager key count %d too large", ErrBadEncoding, n)
		}
		keys := make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			k, used, err := bytesx.GetBytes(rest)
			if err != nil {
				return Decoded{}, fmt.Errorf("%w: eager key %d: %v", ErrBadEncoding, i, err)
			}
			keys = append(keys, k)
			rest = rest[used:]
		}
		return Decoded{Enc: EncEager, OtherKeys: keys, Value: rest}, nil
	case EncLazy:
		rest := buf[1:]
		k, used, err := bytesx.GetBytes(rest)
		if err != nil {
			return Decoded{}, fmt.Errorf("%w: lazy input key: %v", ErrBadEncoding, err)
		}
		return Decoded{Enc: EncLazy, InputKey: k, InputValue: rest[used:]}, nil
	}
	return Decoded{}, fmt.Errorf("%w: unknown flag %d", ErrBadEncoding, buf[0])
}
