package anticombine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/mr"
	"repro/internal/obs"
)

// spillingShared builds a Shared under heavy spill pressure on fs.
func spillingShared(fs iokit.FS) *Shared {
	return NewShared(SharedConfig{
		KeyCompare:    bytesx.Bytes,
		MemLimitBytes: 64,
		MergeFactor:   2,
		FS:            fs,
		Prefix:        "leaktest",
	})
}

// fillShared adds enough keyed values to force spills and merges.
func fillShared(t *testing.T, s *Shared, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%03d", i%40)
		v := fmt.Sprintf("value%05d", i)
		if err := s.Add([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 {
		t.Fatal("setup: expected spills")
	}
}

func listFiles(t *testing.T, fs iokit.FS) []string {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestSharedDrainLeavesNoFiles is the lifecycle regression: runs
// consumed by PopMinKeyValues must have their spill files deleted as
// they finish, so a fully drained Shared leaves an empty filesystem
// even before Close.
func TestSharedDrainLeavesNoFiles(t *testing.T) {
	fs := iokit.NewMemFS()
	s := spillingShared(fs)
	fillShared(t, s, 400)
	for !s.Empty() {
		if _, _, err := s.PopMinKeyValues(); err != nil {
			t.Fatal(err)
		}
	}
	if names := listFiles(t, fs); len(names) != 0 {
		t.Errorf("drained Shared left %d files: %v", len(names), names)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close after drain: %v", err)
	}
}

// TestSharedCloseRemovesFiles: an abandoned Shared (e.g. a failed task)
// must delete its live run files on Close, not just close the readers.
func TestSharedCloseRemovesFiles(t *testing.T) {
	fs := iokit.NewMemFS()
	s := spillingShared(fs)
	fillShared(t, s, 400)
	if len(listFiles(t, fs)) == 0 {
		t.Fatal("setup: expected live run files")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if names := listFiles(t, fs); len(names) != 0 {
		t.Errorf("Close left %d files: %v", len(names), names)
	}
}

// TestSharedMergeRemovesSourceRuns: after a successful run merge, only
// the merged file may remain on disk — the consumed pre-merge spill
// files must be gone.
func TestSharedMergeRemovesSourceRuns(t *testing.T) {
	fs := iokit.NewMemFS()
	s := spillingShared(fs)
	fillShared(t, s, 400)
	names := listFiles(t, fs)
	if len(names) != len(s.runs) {
		t.Errorf("%d files on disk for %d live runs: %v", len(names), len(s.runs), names)
	}
	s.Close()
}

// TestSharedMergeErrorCleanup: a write failure mid-merge must surface
// the error, remove the partially written merge file, and leave the
// source runs intact on disk for the caller (Close) to release.
func TestSharedMergeErrorCleanup(t *testing.T) {
	mem := iokit.NewMemFS()
	flaky := &iokit.FlakyFS{Inner: mem}
	s := NewShared(SharedConfig{
		KeyCompare:    bytesx.Bytes,
		MemLimitBytes: 64,
		MergeFactor:   100, // no merges during fill
		FS:            flaky,
		Prefix:        "mergefail",
	})
	fillShared(t, s, 200)
	before := listFiles(t, mem)

	flaky.FailWriteAt = 1 // every write from now on fails
	err := s.mergeRuns()
	if !errors.Is(err, iokit.ErrInjected) {
		t.Fatalf("mergeRuns error = %v, want injected", err)
	}
	after := listFiles(t, mem)
	if len(after) != len(before) {
		t.Errorf("file set changed across failed merge: before %v, after %v", before, after)
	}
	for _, name := range after {
		if strings.Contains(name, "shared-merge") {
			t.Errorf("partial merge file %s left behind", name)
		}
	}
	flaky.FailWriteAt = 0
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if names := listFiles(t, mem); len(names) != 0 {
		t.Errorf("Close after failed merge left files: %v", names)
	}
}

// errAfterReader serves its buffered bytes, then fails every further
// read with ErrInjected, and records whether it was closed.
type errAfterReader struct {
	data   *bytes.Reader
	closed bool
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	if e.data.Len() > 0 {
		return e.data.Read(p)
	}
	return 0, iokit.ErrInjected
}

func (e *errAfterReader) Close() error {
	e.closed = true
	return nil
}

// TestSharedAdvanceClosesReaderOnError: a non-EOF read error is fatal
// for the run, so advance must release the file handle instead of
// leaking it.
func TestSharedAdvanceClosesReaderOnError(t *testing.T) {
	var buf bytes.Buffer
	w := bytesx.NewWriter(&buf)
	if err := w.WriteRecord([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	src := &errAfterReader{data: bytes.NewReader(buf.Bytes())}
	run := &sharedRun{r: bytesx.NewReader(src), closer: src, name: "readfail"}
	if err := run.advance(); err != nil {
		t.Fatalf("first advance (valid record): %v", err)
	}
	if string(run.headKey) != "key" {
		t.Fatalf("headKey = %q", run.headKey)
	}
	if err := run.advance(); !errors.Is(err, iokit.ErrInjected) {
		t.Fatalf("advance error = %v, want injected", err)
	}
	if run.closer != nil || !src.closed {
		t.Error("advance leaked the run's reader on a read error")
	}
}

// TestJobLeavesNoSharedFiles is the end-to-end census: after any job
// whose Shared structures spilled, no shared-spill or shared-merge
// files may remain on the job's filesystem.
func TestJobLeavesNoSharedFiles(t *testing.T) {
	fs := iokit.NewMemFS()
	job := Wrap(prefixJob(nil, 3), Options{
		Strategy:            Adaptive,
		SharedMemLimitBytes: 64,
		SharedMergeFactor:   2,
	})
	job.FS = fs
	res, err := mr.Run(job, queries(200))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Extra[CounterSharedSpills] == 0 {
		t.Fatal("setup: job's Shared never spilled")
	}
	for _, name := range listFiles(t, fs) {
		if strings.Contains(name, "shared-spill") || strings.Contains(name, "shared-merge") {
			t.Errorf("orphaned Shared file after job: %s", name)
		}
	}
}

// TestJobTraceContainsAllSpanKinds runs a spilling job with a tracer
// attached and checks the span taxonomy end to end, including that the
// Chrome export is valid JSON.
func TestJobTraceContainsAllSpanKinds(t *testing.T) {
	tracer := obs.NewTracer()
	job := Wrap(prefixJob(nil, 3), Options{
		Strategy:            Adaptive,
		SharedMemLimitBytes: 64,
		SharedMergeFactor:   2,
	})
	job.Tracer = tracer
	if _, err := mr.Run(job, queries(200)); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, sp := range tracer.Spans() {
		counts[sp.Kind]++
	}
	for _, kind := range []string{obs.KindJob, obs.KindMap, obs.KindFetch,
		obs.KindReduce, obs.KindSharedSpill, obs.KindSharedMerge} {
		if counts[kind] == 0 {
			t.Errorf("no %s spans in trace (got %v)", kind, counts)
		}
	}
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(events) < len(tracer.Spans()) {
		t.Errorf("trace export has %d events for %d spans", len(events), len(tracer.Spans()))
	}
}
