package anticombine

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/mr"
)

// prefixJob is a Query-Suggestion-shaped job: Map emits (prefix, query)
// for every prefix of the query; Reduce emits the sorted set of queries
// with multiplicities. Output is order-insensitive so original and
// wrapped runs compare exactly.
func prefixJob(partitioner mr.Partitioner, reducers int) *mr.Job {
	return &mr.Job{
		Name: "prefix",
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			q := string(value)
			for i := 1; i <= len(q); i++ {
				if err := out.Emit([]byte(q[:i]), value); err != nil {
					return err
				}
			}
			return nil
		}),
		NewReducer: mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
			counts := map[string]int{}
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				counts[string(v)]++
			}
			var parts []string
			for q, n := range counts {
				parts = append(parts, fmt.Sprintf("%s×%d", q, n))
			}
			sort.Strings(parts)
			return out.Emit(key, []byte(strings.Join(parts, ",")))
		}),
		Partitioner:    partitioner,
		NumReduceTasks: reducers,
		Deterministic:  true,
	}
}

// fanoutJob emits a randomized (but input-deterministic) mix of records:
// some share values, some don't, spread over partitions — exercising
// plain, eager, and lazy paths together.
func fanoutJob() *mr.Job {
	return &mr.Job{
		Name: "fanout",
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			seed := int64(len(value))
			for _, b := range value {
				seed = seed*131 + int64(b)
			}
			rng := rand.New(rand.NewSource(seed))
			n := rng.Intn(8)
			shared := fmt.Sprintf("shared-%x", seed)
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("k%03d", rng.Intn(50)))
				if rng.Intn(2) == 0 {
					if err := out.Emit(k, []byte(shared)); err != nil {
						return err
					}
				} else {
					if err := out.Emit(k, []byte(fmt.Sprintf("solo-%d-%d", seed, i))); err != nil {
						return err
					}
				}
			}
			return nil
		}),
		NewReducer: mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
			var vs []string
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				vs = append(vs, string(v))
			}
			sort.Strings(vs)
			return out.Emit(key, []byte(strings.Join(vs, "|")))
		}),
		NumReduceTasks: 5,
		Deterministic:  true,
	}
}

// countJob is WordCount with a sum combiner.
func countJob() *mr.Job {
	sum := mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
		total := 0
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		return out.Emit(key, []byte(strconv.Itoa(total)))
	})
	return &mr.Job{
		Name: "count",
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				if err := out.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		}),
		NewReducer:     sum,
		NewCombiner:    sum,
		NumReduceTasks: 3,
		Deterministic:  true,
	}
}

// identityJob ships each record through unchanged (the Sort workload).
func identityJob() *mr.Job {
	return &mr.Job{
		Name: "identity",
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			return out.Emit(value, value)
		}),
		NewReducer: mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
			n := 0
			for {
				if _, ok := values.Next(); !ok {
					break
				}
				n++
			}
			return out.Emit(key, []byte(strconv.Itoa(n)))
		}),
		NumReduceTasks: 4,
		Deterministic:  true,
	}
}

func queries(n int) []mr.Split {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"mango", "manga", "map", "sigmod", "sigmod 2014",
		"sigmod acceptance rate", "watch how i met your mother online",
		"mapreduce", "anti combining", "query suggestion", "man"}
	var recs []mr.Record
	for i := 0; i < n; i++ {
		recs = append(recs, mr.Record{Value: []byte(vocab[rng.Intn(len(vocab))])})
	}
	return mr.SplitRecords(recs, 6)
}

func resultMap(t *testing.T, res *mr.Result) map[string]string {
	t.Helper()
	m := make(map[string]string)
	for _, r := range res.SortedOutput() {
		if prev, dup := m[string(r.Key)]; dup {
			t.Fatalf("duplicate output key %q (%q vs %q)", r.Key, prev, r.Value)
		}
		m[string(r.Key)] = string(r.Value)
	}
	return m
}

func assertSameOutput(t *testing.T, original, wrapped *mr.Result) {
	t.Helper()
	got, want := resultMap(t, wrapped), resultMap(t, original)
	if len(got) != len(want) {
		t.Fatalf("output key counts differ: wrapped %d vs original %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q: wrapped %q, original %q", k, got[k], v)
		}
	}
}

// TestWrapEquivalenceMatrix is the core invariant of the reproduction:
// the transformed program must compute exactly what the original does,
// across every strategy, threshold, combiner flag, and Shared pressure.
func TestWrapEquivalenceMatrix(t *testing.T) {
	jobs := map[string]func() (*mr.Job, []mr.Split){
		"prefix-hash":    func() (*mr.Job, []mr.Split) { return prefixJob(nil, 4), queries(150) },
		"prefix-single":  func() (*mr.Job, []mr.Split) { return prefixJob(nil, 1), queries(80) },
		"fanout":         func() (*mr.Job, []mr.Split) { return fanoutJob(), queries(200) },
		"count-combiner": func() (*mr.Job, []mr.Split) { return countJob(), queries(200) },
		"identity":       func() (*mr.Job, []mr.Split) { return identityJob(), queries(150) },
	}
	optsSets := map[string]Options{
		"adaptiveInf":    AdaptiveInf(),
		"adaptive0":      Adaptive0(),
		"adaptiveAlpha":  AdaptiveAlpha(),
		"adaptiveTinyT":  {Strategy: Adaptive, T: time.Nanosecond},
		"lazyOnly":       {Strategy: LazyOnly},
		"mapCombiner":    {Strategy: Adaptive, MapCombiner: true},
		"tinyShared":     {Strategy: Adaptive, SharedMemLimitBytes: 64, SharedMergeFactor: 2},
		"noSharedComb":   {Strategy: Adaptive, DisableSharedCombine: true},
		"lazyTinyShared": {Strategy: LazyOnly, SharedMemLimitBytes: 64},
	}
	for jobName, mk := range jobs {
		job, splits := mk()
		original, err := mr.Run(job, splits)
		if err != nil {
			t.Fatalf("%s original: %v", jobName, err)
		}
		for optName, opts := range optsSets {
			t.Run(jobName+"/"+optName, func(t *testing.T) {
				job2, splits2 := mk()
				wrapped, err := mr.Run(Wrap(job2, opts), splits2)
				if err != nil {
					t.Fatal(err)
				}
				assertSameOutput(t, original, wrapped)
			})
		}
	}
}

func TestWrapWithSpillsAndCodec(t *testing.T) {
	// Tiny engine buffers force spills of encoded records plus
	// multi-pass merges, on top of a compressed map output stream.
	mk := func() (*mr.Job, []mr.Split) { return prefixJob(nil, 3), queries(200) }
	job, splits := mk()
	original, err := mr.Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	job2, splits2 := mk()
	wjob := Wrap(job2, AdaptiveInf())
	wjob.SortBufferBytes = 512
	wjob.MergeFactor = 2
	wrapped, err := mr.Run(wjob, splits2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, original, wrapped)
}

func TestWrapCombinerModeWithSpills(t *testing.T) {
	// MapCombiner=true routes encoded records through the transformed
	// combiner at spill time (and at merge time with >=3 spills).
	mk := func() (*mr.Job, []mr.Split) { return countJob(), queries(300) }
	job, splits := mk()
	original, err := mr.Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	job2, splits2 := mk()
	wjob := Wrap(job2, Options{Strategy: Adaptive, MapCombiner: true})
	wjob.SortBufferBytes = 512
	wrapped, err := mr.Run(wjob, splits2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, original, wrapped)
	if wrapped.Stats.CombineInputRecords == 0 {
		t.Error("transformed combiner never ran")
	}
}

func TestStrategyCounters(t *testing.T) {
	run := func(opts Options) *mr.Result {
		job, splits := prefixJob(nil, 1), queries(100)
		res, err := mr.Run(Wrap(job, opts), splits)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	eager := run(Adaptive0())
	if eager.Stats.Extra[CounterLazyRecords] != 0 || eager.Stats.Extra[CounterMapReexec] != 0 {
		t.Errorf("EagerOnly produced lazy records: %v", eager.Stats.Extra)
	}
	if eager.Stats.Extra[CounterEagerRecords] == 0 {
		t.Error("EagerOnly produced no eager records on the prefix workload")
	}
	lazy := run(Options{Strategy: LazyOnly})
	if lazy.Stats.Extra[CounterLazyRecords] == 0 || lazy.Stats.Extra[CounterMapReexec] == 0 {
		t.Errorf("LazyOnly produced no lazy records: %v", lazy.Stats.Extra)
	}
	adaptive := run(AdaptiveInf())
	if adaptive.Stats.Extra[CounterOrigMapRecords] == 0 {
		t.Error("original map output counter missing")
	}
}

func TestNonDeterministicDisablesLazy(t *testing.T) {
	job, splits := prefixJob(nil, 2), queries(60)
	job.Deterministic = false
	res, err := mr.Run(Wrap(job, Options{Strategy: LazyOnly}), splits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Extra[CounterLazyRecords] != 0 {
		t.Errorf("non-deterministic job emitted %d lazy records",
			res.Stats.Extra[CounterLazyRecords])
	}
	original, err := mr.Run(prefixJob(nil, 2), queries(60))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, original, res)
}

// TestPaperExampleDataSizes reproduces §4.1's arithmetic: for the query
// "watch how i met your mother online" (34 chars) with every prefix on
// one reduce task, the original ships O(n²) ≈ 1751 payload chars, EagerSH
// ≈ 629 (still quadratic in the keys), LazySH ≈ 35 (linear).
func TestPaperExampleDataSizes(t *testing.T) {
	one := []mr.Split{&mr.MemSplit{Recs: []mr.Record{
		{Value: []byte("watch how i met your mother online")},
	}}}
	size := func(opts *Options) int64 {
		job := prefixJob(nil, 1)
		if opts == nil {
			res, err := mr.Run(job, one)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats.MapOutputBytes
		}
		res, err := mr.Run(Wrap(job, *opts), one)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.MapOutputBytes
	}
	eagerOpts, lazyOpts := Adaptive0(), Options{Strategy: LazyOnly}
	orig, eager, lazy := size(nil), size(&eagerOpts), size(&lazyOpts)
	if !(lazy < eager && eager < orig) {
		t.Fatalf("size ordering violated: lazy=%d eager=%d orig=%d", lazy, eager, orig)
	}
	// Framing overhead aside, the ratios should be roughly 35 : 629 : 1751.
	if lazy*8 > eager {
		t.Errorf("lazy (%d) should be far below eager (%d)", lazy, eager)
	}
	if eager*2 > orig {
		t.Errorf("eager (%d) should be well below original (%d)", eager, orig)
	}
	// AdaptiveSH with one partition must match LazySH's choice.
	adaptiveOpts := AdaptiveInf()
	if a := size(&adaptiveOpts); a > lazy+8 {
		t.Errorf("adaptive (%d) should track lazy (%d) here", a, lazy)
	}
}

func TestWrapPreservesJobConfig(t *testing.T) {
	job := countJob()
	w := Wrap(job, AdaptiveInf())
	if w.NumReduceTasks != job.NumReduceTasks || w.Partitioner != nil && job.Partitioner == nil {
		t.Error("wrap should preserve job config")
	}
	if w.NewCombiner != nil {
		t.Error("combiner should be dropped when MapCombiner is false")
	}
	w2 := Wrap(job, Options{MapCombiner: true})
	if w2.NewCombiner == nil {
		t.Error("combiner should be kept (transformed) when MapCombiner is true")
	}
}
