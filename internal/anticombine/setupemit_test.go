package anticombine

import (
	"fmt"
	"testing"

	"repro/internal/mr"
)

// setupEmitMapper emits records during Setup and Cleanup (the in-mapper
// combining pattern); those emissions must be partitioned correctly
// before eager grouping, or same-value records bound for different
// reducers would merge into one encoded record.
type setupEmitMapper struct{}

func (setupEmitMapper) Setup(_ *mr.TaskInfo, out mr.Emitter) error {
	for i := 0; i < 20; i++ {
		// Distinct keys, identical value: prime eager-grouping bait.
		if err := out.Emit([]byte(fmt.Sprintf("setup%02d", i)), []byte("shared")); err != nil {
			return err
		}
	}
	return nil
}

func (setupEmitMapper) Map(key, value []byte, out mr.Emitter) error {
	if err := out.Emit(value, value); err != nil {
		return err
	}
	// Also hit the Setup/Cleanup keys from the Map path, so a record
	// mis-partitioned during Setup produces a duplicate reduce call for
	// the same key on another reducer.
	if err := out.Emit([]byte("setup07"), []byte("frommap")); err != nil {
		return err
	}
	return out.Emit([]byte("cleanup11"), []byte("frommap"))
}

func (setupEmitMapper) Cleanup(out mr.Emitter) error {
	for i := 0; i < 20; i++ {
		if err := out.Emit([]byte(fmt.Sprintf("cleanup%02d", i)), []byte("shared")); err != nil {
			return err
		}
	}
	return nil
}

func TestSetupCleanupEmissionsPartitionedCorrectly(t *testing.T) {
	mk := func() *mr.Job {
		return &mr.Job{
			NewMapper: func() mr.Mapper { return setupEmitMapper{} },
			NewReducer: mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
				n := 0
				for {
					if _, ok := values.Next(); !ok {
						break
					}
					n++
				}
				return out.Emit(key, []byte(fmt.Sprintf("%d", n)))
			}),
			NumReduceTasks: 5,
			Deterministic:  true,
		}
	}
	original, err := mr.Run(mk(), queries(40))
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := mr.Run(Wrap(mk(), AdaptiveInf()), queries(40))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, original, wrapped)
}
