package anticombine

import "repro/internal/mr"

// Wrap applies the Anti-Combining program transformation of §6.1 to a
// job, treating its Mapper, Reducer, Combiner and Partitioner as black
// boxes — the Go analogue of the paper's purely syntactic class rewrite.
// The returned job runs the same computation; its mapper-to-reducer
// stream carries adaptively encoded records instead.
//
// Following §6.2, LazySH is disabled unless the job declares
// Deterministic, because re-executing a non-deterministic Map (or
// Partitioner) on the reducer could change keys or routing.
//
// The original combiner is kept in the map phase only when
// opts.MapCombiner (the paper's flag C) is set, in which case it is
// wrapped by the same transformation; either way it is used to collapse
// Shared in the reduce phase unless opts.DisableSharedCombine is set.
func Wrap(job *mr.Job, opts Options) *mr.Job {
	w := *job
	w.Name = job.Name + "-anti-" + opts.Strategy.String()

	lazyAllowed := job.Deterministic && opts.Strategy != EagerOnly

	newMapper := job.NewMapper
	newReducer := job.NewReducer
	newCombiner := job.NewCombiner

	w.NewMapper = func() mr.Mapper {
		return &antiMapper{inner: newMapper(), opts: opts, lazyAllowed: lazyAllowed}
	}
	w.NewReducer = func() mr.Reducer {
		return &antiReducer{
			inner:       newReducer(),
			newMapper:   newMapper,
			newCombiner: newCombiner,
			opts:        opts,
		}
	}
	if newCombiner != nil && opts.MapCombiner {
		w.NewCombiner = func() mr.Reducer {
			return &antiReducer{
				inner:       newCombiner(),
				newMapper:   newMapper,
				newCombiner: newCombiner,
				opts:        opts,
				combineMode: true,
			}
		}
	} else {
		w.NewCombiner = nil
	}
	return &w
}
