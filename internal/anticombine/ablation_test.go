package anticombine

import (
	"testing"

	"repro/internal/mr"
)

func TestUniformChoiceEquivalence(t *testing.T) {
	// The ablation mode must still compute the right answer.
	job, splits := prefixJob(nil, 4), queries(150)
	original, err := mr.Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := mr.Run(Wrap(prefixJob(nil, 4), Options{
		Strategy:      Adaptive,
		UniformChoice: true,
	}), queries(150))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, original, wrapped)
}

func TestPerPartitionChoiceBeatsUniform(t *testing.T) {
	// §6.1's argument: deciding per partition can only reduce bytes
	// compared to one decision per Map call, and on mixed workloads it
	// strictly does. The fanout job mixes shared-value and unique-value
	// emissions across partitions, so some partitions want eager and
	// others lazy within the same call.
	run := func(uniform bool) int64 {
		job := fanoutJob()
		res, err := mr.Run(Wrap(job, Options{Strategy: Adaptive, UniformChoice: uniform}),
			queries(300))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.MapOutputBytes
	}
	perPartition := run(false)
	uniform := run(true)
	if perPartition > uniform {
		t.Errorf("per-partition bytes (%d) exceed uniform (%d): optimality violated",
			perPartition, uniform)
	}
	if perPartition == uniform {
		t.Logf("per-partition == uniform (%d bytes); workload offered no mixed calls", uniform)
	}
}

func BenchmarkAblationPerPartition(b *testing.B) {
	benchChoice(b, false)
}

func BenchmarkAblationUniformChoice(b *testing.B) {
	benchChoice(b, true)
}

func benchChoice(b *testing.B, uniform bool) {
	var bytes int64
	for i := 0; i < b.N; i++ {
		job := fanoutJob()
		res, err := mr.Run(Wrap(job, Options{Strategy: Adaptive, UniformChoice: uniform}),
			queries(300))
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Stats.MapOutputBytes
	}
	b.ReportMetric(float64(bytes), "mapout-bytes")
}

func BenchmarkEagerEncode(b *testing.B) {
	keys := [][]byte{[]byte("man"), []byte("mang"), []byte("mango")}
	value := []byte("watch how i met your mother online")
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEagerValue(buf[:0], keys, value)
	}
	_ = buf
}

func BenchmarkDecodeEager(b *testing.B) {
	keys := [][]byte{[]byte("man"), []byte("mang"), []byte("mango")}
	buf := AppendEagerValue(nil, keys, []byte("watch how i met your mother online"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeValue(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedAddPop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newTestShared(1 << 20)
		for j := 0; j < 100; j++ {
			s.Add([]byte{byte(j)}, []byte("value"))
		}
		for !s.Empty() {
			if _, _, err := s.PopMinKeyValues(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
