package anticombine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bytesx"
	"repro/internal/iokit"
)

// TestSharedRandomizedAgainstReference drives Shared with random
// interleavings of Add / PeekMinKey / PopMinKeyValues across many
// memory-limit configurations and checks every observation against a
// plain sorted-multimap reference.
func TestSharedRandomizedAgainstReference(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		memLimit := []int{32, 100, 1000, 1 << 20}[trial%4]
		mergeFactor := []int{2, 3, 10}[trial%3]
		s := NewShared(SharedConfig{
			KeyCompare:    bytesx.Bytes,
			MemLimitBytes: memLimit,
			MergeFactor:   mergeFactor,
			FS:            iokit.NewMemFS(),
			Prefix:        fmt.Sprintf("rand%04d", trial),
		})
		ref := map[string][]string{}
		minRefKey := func() (string, bool) {
			keys := make([]string, 0, len(ref))
			for k := range ref {
				keys = append(keys, k)
			}
			if len(keys) == 0 {
				return "", false
			}
			sort.Strings(keys)
			return keys[0], true
		}

		// Popped keys must be >= every previously popped key AND >= the
		// min at pop time; Adds may only use keys >= the last popped key
		// (the drain-in-order discipline AntiReducer guarantees).
		floor := ""
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // Add
				k := fmt.Sprintf("%s%02d", floor, rng.Intn(40))
				v := fmt.Sprintf("v%06d", rng.Intn(1000000))
				if err := s.Add([]byte(k), []byte(v)); err != nil {
					t.Fatalf("trial %d op %d: Add: %v", trial, op, err)
				}
				ref[k] = append(ref[k], v)
			case 2: // Peek
				want, wantOK := minRefKey()
				got, ok := s.PeekMinKey()
				if ok != wantOK || (ok && string(got) != want) {
					t.Fatalf("trial %d op %d: PeekMinKey = %q/%v, want %q/%v",
						trial, op, got, ok, want, wantOK)
				}
			case 3: // Pop
				want, wantOK := minRefKey()
				if !wantOK {
					continue
				}
				k, vals, err := s.PopMinKeyValues()
				if err != nil {
					t.Fatalf("trial %d op %d: Pop: %v", trial, op, err)
				}
				if string(k) != want {
					t.Fatalf("trial %d op %d: popped %q, want %q", trial, op, k, want)
				}
				got := make([]string, len(vals))
				for i, v := range vals {
					got[i] = string(v)
				}
				sort.Strings(got)
				wantVals := append([]string(nil), ref[want]...)
				sort.Strings(wantVals)
				if len(got) != len(wantVals) {
					t.Fatalf("trial %d op %d: key %q: %d values, want %d",
						trial, op, k, len(got), len(wantVals))
				}
				for i := range wantVals {
					if got[i] != wantVals[i] {
						t.Fatalf("trial %d op %d: key %q value mismatch", trial, op, k)
					}
				}
				delete(ref, want)
				floor = want
			}
		}
		// Drain the remainder.
		for !s.Empty() {
			k, vals, err := s.PopMinKeyValues()
			if err != nil {
				t.Fatal(err)
			}
			want, _ := minRefKey()
			if string(k) != want || len(vals) != len(ref[want]) {
				t.Fatalf("trial %d drain: key %q (%d values), want %q (%d)",
					trial, k, len(vals), want, len(ref[want]))
			}
			delete(ref, want)
		}
		if len(ref) != 0 {
			t.Fatalf("trial %d: %d keys never surfaced", trial, len(ref))
		}
		s.Close()
	}
}
