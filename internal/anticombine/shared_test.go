package anticombine

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/mr"
)

func newTestShared(memLimit int) *Shared {
	return NewShared(SharedConfig{
		KeyCompare:    bytesx.Bytes,
		MemLimitBytes: memLimit,
		FS:            iokit.NewMemFS(),
		Prefix:        "test",
	})
}

func TestSharedOrderedDrain(t *testing.T) {
	s := newTestShared(1 << 20)
	keys := []string{"delta", "alpha", "charlie", "bravo", "alpha"}
	for i, k := range keys {
		if err := s.Add([]byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if mk, ok := s.PeekMinKey(); !ok || string(mk) != "alpha" {
		t.Fatalf("PeekMinKey = %q, %v", mk, ok)
	}
	var got []string
	for !s.Empty() {
		k, vals, err := s.PopMinKeyValues()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%s:%d", k, len(vals)))
	}
	want := []string{"alpha:2", "bravo:1", "charlie:1", "delta:1"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("drain[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, _, err := s.PopMinKeyValues(); err == nil {
		t.Error("pop on empty should error")
	}
}

func TestSharedSpillAndMerge(t *testing.T) {
	// A tiny memory limit forces many spills; a tiny merge factor forces
	// run merging. All values must still come back grouped and in order.
	s := NewShared(SharedConfig{
		KeyCompare:    bytesx.Bytes,
		MemLimitBytes: 64,
		MergeFactor:   2,
		FS:            iokit.NewMemFS(),
		Prefix:        "spilltest",
	})
	rng := rand.New(rand.NewSource(5))
	want := map[string][]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%03d", rng.Intn(60))
		v := fmt.Sprintf("value%05d", i)
		want[k] = append(want[k], v)
		if err := s.Add([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 {
		t.Fatal("expected spills")
	}
	var prev string
	popped := 0
	for !s.Empty() {
		k, vals, err := s.PopMinKeyValues()
		if err != nil {
			t.Fatal(err)
		}
		ks := string(k)
		if prev != "" && ks <= prev {
			t.Fatalf("keys out of order: %q after %q", ks, prev)
		}
		prev = ks
		popped++
		gotVals := make([]string, len(vals))
		for i, v := range vals {
			gotVals[i] = string(v)
		}
		sort.Strings(gotVals)
		wv := append([]string(nil), want[ks]...)
		sort.Strings(wv)
		if len(gotVals) != len(wv) {
			t.Fatalf("key %s: %d values, want %d", ks, len(gotVals), len(wv))
		}
		for i := range wv {
			if gotVals[i] != wv[i] {
				t.Fatalf("key %s value mismatch", ks)
			}
		}
		delete(want, ks)
	}
	if len(want) != 0 {
		t.Errorf("%d keys never popped", len(want))
	}
}

func TestSharedInterleavedAddPop(t *testing.T) {
	// Keys in a spill run and later re-added in memory must merge on pop.
	s := NewShared(SharedConfig{
		KeyCompare:    bytesx.Bytes,
		MemLimitBytes: 40,
		FS:            iokit.NewMemFS(),
		Prefix:        "interleave",
	})
	for i := 0; i < 10; i++ {
		if err := s.Add([]byte("kk"), []byte(fmt.Sprintf("spillme%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 {
		t.Fatal("expected a spill")
	}
	if err := s.Add([]byte("kk"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	_, vals, err := s.PopMinKeyValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 11 {
		t.Errorf("got %d values, want 11 (memory + spilled)", len(vals))
	}
}

func TestSharedGroupCompare(t *testing.T) {
	groupByFirstByte := func(a, b []byte) int {
		return bytesx.Bytes(a[:1], b[:1])
	}
	s := NewShared(SharedConfig{
		KeyCompare:   bytesx.Bytes,
		GroupCompare: groupByFirstByte,
		FS:           iokit.NewMemFS(),
	})
	for _, k := range []string{"a1", "a2", "b1", "a3"} {
		if err := s.Add([]byte(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	k, vals, err := s.PopMinKeyValues()
	if err != nil {
		t.Fatal(err)
	}
	if string(k) != "a1" || len(vals) != 3 {
		t.Errorf("first group: key=%q n=%d, want a1/3", k, len(vals))
	}
	k2, vals2, err := s.PopMinKeyValues()
	if err != nil {
		t.Fatal(err)
	}
	if string(k2) != "b1" || len(vals2) != 1 {
		t.Errorf("second group: key=%q n=%d", k2, len(vals2))
	}
	if !s.Empty() {
		t.Error("should be empty")
	}
}

// sumCombiner adds decimal values, for combine-on-insert tests.
type sumCombiner struct{ mr.ReducerBase }

func (sumCombiner) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	total := 0
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		total += n
	}
	return out.Emit(key, []byte(strconv.Itoa(total)))
}

func TestSharedCombineOnInsert(t *testing.T) {
	s := NewShared(SharedConfig{
		KeyCompare:    bytesx.Bytes,
		MemLimitBytes: 1 << 20,
		FS:            iokit.NewMemFS(),
		Combiner:      sumCombiner{},
	})
	for i := 1; i <= 100; i++ {
		if err := s.Add([]byte("k"), []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	_, vals, err := s.PopMinKeyValues()
	if err != nil {
		t.Fatal(err)
	}
	// Combining is batched, so up to combineBatch-1 values may remain —
	// but their sum must be exact and the count bounded.
	if len(vals) >= combineBatch {
		t.Errorf("%d values remain; combine-on-insert should bound this below %d",
			len(vals), combineBatch)
	}
	total := 0
	for _, v := range vals {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 100 {
		t.Errorf("combined sum = %d, want 100", total)
	}
	if s.Spills() != 0 {
		t.Errorf("combine-on-insert should have kept Shared in memory, spilled %d times", s.Spills())
	}
}

func TestSharedCombineKeepsMemorySmall(t *testing.T) {
	// Without a combiner this workload spills; with one it must not —
	// the Table 2 AdaptiveSH-CB effect.
	plain := newTestShared(128)
	for i := 0; i < 500; i++ {
		plain.Add([]byte(fmt.Sprintf("k%d", i%4)), []byte("1"))
	}
	if plain.Spills() == 0 {
		t.Fatal("plain Shared should spill under this load")
	}
	combined := NewShared(SharedConfig{
		KeyCompare:    bytesx.Bytes,
		MemLimitBytes: 128,
		FS:            iokit.NewMemFS(),
		Combiner:      sumCombiner{},
	})
	for i := 0; i < 500; i++ {
		if err := combined.Add([]byte(fmt.Sprintf("k%d", i%4)), []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	if combined.Spills() != 0 {
		t.Errorf("combined Shared spilled %d times", combined.Spills())
	}
}

func TestSharedSpillWithoutFS(t *testing.T) {
	s := NewShared(SharedConfig{KeyCompare: bytesx.Bytes, MemLimitBytes: 8})
	err := s.Add([]byte("key"), []byte("a long enough value to overflow"))
	if err == nil {
		t.Error("spill without FS should error")
	}
}

func TestSharedPeekEmpty(t *testing.T) {
	s := newTestShared(1 << 20)
	if _, ok := s.PeekMinKey(); ok {
		t.Error("peek on empty should report !ok")
	}
	if !s.Empty() {
		t.Error("new Shared should be empty")
	}
}
