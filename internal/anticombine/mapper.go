package anticombine

import (
	"bytes"
	"sort"
	"time"

	"repro/internal/bytesx"
	"repro/internal/mr"
)

// Names of the auxiliary counters the wrappers publish through
// mr.Counters.AddExtra.
const (
	// CounterOrigMapRecords counts records the original Map emitted
	// (before encoding) — Hadoop's pre-combine "map output records".
	CounterOrigMapRecords = "anti.origMapOutputRecords"
	// CounterOrigMapBytes is their framed size: what the Original
	// program would have shipped.
	CounterOrigMapBytes = "anti.origMapOutputBytes"
	// CounterEagerRecords counts emitted EagerSH records (with a
	// non-empty key set).
	CounterEagerRecords = "anti.eagerRecords"
	// CounterLazyRecords counts emitted LazySH records.
	CounterLazyRecords = "anti.lazyRecords"
	// CounterPlainRecords counts emitted plain records.
	CounterPlainRecords = "anti.plainRecords"
	// CounterMapReexec counts reducer-side re-executions of Map.
	CounterMapReexec = "anti.mapReexec"
	// CounterSharedSpills counts Shared spills to disk.
	CounterSharedSpills = "anti.sharedSpills"
	// CounterSharedMerges counts merges of Shared's on-disk spill runs.
	CounterSharedMerges = "anti.sharedMerges"
)

// encodeChoice is a per-partition encoding decision.
type encodeChoice int

const (
	// choiceAuto compares encoded sizes per partition (§6.1's default).
	choiceAuto encodeChoice = iota
	// choiceEager forces EagerSH/plain.
	choiceEager
	// choiceLazy forces LazySH.
	choiceLazy
)

// antiMapper is the paper's AntiMapper (Figure 7): it intercepts the
// original Map's output per call, groups it by reduce partition, and for
// each partition adaptively emits the cheapest of plain / EagerSH /
// LazySH encodings.
type antiMapper struct {
	inner mr.Mapper
	opts  Options
	info  *mr.TaskInfo

	lazyAllowed bool // false when the job is non-deterministic

	arena   []byte
	recs    []capturedRec
	scratch []byte
	groups  []eagerGroup // reused by buildEagerGroups
	keybuf  [][]byte     // reused for eager key sets

	windowCalls int // Map calls buffered in the current cross-call window

	// Per-task counter accumulators, flushed once at Cleanup so the hot
	// path never takes the shared counters' lock.
	nOrigRecords int64
	nOrigBytes   int64
	nEager       int64
	nLazy        int64
	nPlain       int64
}

type capturedRec struct {
	keyOff, keyLen     int
	valueOff, valueLen int
	partition          int
}

func (m *antiMapper) reckey(r capturedRec) []byte {
	return m.arena[r.keyOff : r.keyOff+r.keyLen]
}

func (m *antiMapper) recvalue(r capturedRec) []byte {
	return m.arena[r.valueOff : r.valueOff+r.valueLen]
}

// capture implements the extended context object of Figure 7: it
// intercepts the original Map's output instead of letting it reach the
// framework.
func (m *antiMapper) capture(key, value []byte) error {
	ko := len(m.arena)
	m.arena = append(m.arena, key...)
	vo := len(m.arena)
	m.arena = append(m.arena, value...)
	m.recs = append(m.recs, capturedRec{
		keyOff: ko, keyLen: len(key),
		valueOff: vo, valueLen: len(value),
	})
	return nil
}

func (m *antiMapper) reset() {
	m.arena = m.arena[:0]
	m.recs = m.recs[:0]
}

// Setup implements mr.Mapper. Records emitted during the original
// Setup have no input record to fall back to, so LazySH is off for them.
func (m *antiMapper) Setup(info *mr.TaskInfo, out mr.Emitter) error {
	m.info = info
	m.reset()
	if err := m.inner.Setup(info, mr.EmitterFunc(m.capture)); err != nil {
		return err
	}
	m.assignPartitions()
	if err := m.encodeAndEmit(out, nil, nil, false, false); err != nil {
		return err
	}
	m.reset()
	return nil
}

// Map implements mr.Mapper, performing the per-call adaptive encoding.
// Map and getPartition costs are only measured when a threshold is set;
// with T = 0 (unlimited) the timers would be pure overhead.
func (m *antiMapper) Map(key, value []byte, out mr.Emitter) error {
	if m.opts.CrossCallWindow > 1 {
		return m.mapWindowed(key, value, out)
	}
	measure := m.opts.T > 0 && m.lazyAllowed && m.opts.Strategy == Adaptive
	var mapStart time.Time
	if measure {
		mapStart = time.Now()
	}
	if err := m.inner.Map(key, value, mr.EmitterFunc(m.capture)); err != nil {
		return err
	}
	var callCost time.Duration
	if measure {
		callCost = time.Since(mapStart)
	}

	touched := m.assignPartitions()
	if measure {
		callCost = time.Since(mapStart)
	}

	// Figure 7's threshold rule: when re-executing Map+getPartition on
	// every touched reducer would cost more than T, avoid LazySH.
	underThreshold := !measure || time.Duration(touched)*callCost <= m.opts.T
	if err := m.encodeAndEmit(out, key, value, true, underThreshold); err != nil {
		return err
	}
	m.reset()
	return nil
}

// mapWindowed implements the paper's future-work extension (§9):
// sharing "not only for the input of a single Map call, but also across
// all Map calls in the same map task", bounded by a window of
// CrossCallWindow calls so buffer space stays small. Records from
// consecutive calls accumulate and are EagerSH-encoded together, so
// identical values from different inputs (e.g. WordCount's "1") share
// one record per partition. LazySH is unavailable across calls — a
// window spans several input records — so windows encode eagerly.
func (m *antiMapper) mapWindowed(key, value []byte, out mr.Emitter) error {
	if err := m.inner.Map(key, value, mr.EmitterFunc(m.capture)); err != nil {
		return err
	}
	m.windowCalls++
	if m.windowCalls < m.opts.CrossCallWindow {
		return nil
	}
	return m.flushWindow(out)
}

// flushWindow encodes and emits any buffered window records.
func (m *antiMapper) flushWindow(out mr.Emitter) error {
	m.windowCalls = 0
	if len(m.recs) == 0 {
		return nil
	}
	m.assignPartitions()
	if err := m.encodeAndEmit(out, nil, nil, false, false); err != nil {
		return err
	}
	m.reset()
	return nil
}

// Cleanup implements mr.Mapper; like Setup, its emissions cannot use
// LazySH.
func (m *antiMapper) Cleanup(out mr.Emitter) error {
	if m.opts.CrossCallWindow > 1 {
		if err := m.flushWindow(out); err != nil {
			return err
		}
	}
	m.reset()
	if err := m.inner.Cleanup(mr.EmitterFunc(m.capture)); err != nil {
		return err
	}
	m.assignPartitions()
	if err := m.encodeAndEmit(out, nil, nil, false, false); err != nil {
		return err
	}
	m.reset()
	m.flushCounters()
	return nil
}

// flushCounters publishes the task's accumulated statistics.
func (m *antiMapper) flushCounters() {
	c := m.info.Counters
	c.AddExtra(CounterOrigMapRecords, m.nOrigRecords)
	c.AddExtra(CounterOrigMapBytes, m.nOrigBytes)
	c.AddExtra(CounterEagerRecords, m.nEager)
	c.AddExtra(CounterLazyRecords, m.nLazy)
	c.AddExtra(CounterPlainRecords, m.nPlain)
	m.nOrigRecords, m.nOrigBytes, m.nEager, m.nLazy, m.nPlain = 0, 0, 0, 0, 0
}

// assignPartitions computes each captured record's reduce partition and
// returns how many distinct partitions were touched.
func (m *antiMapper) assignPartitions() int {
	touched := 0
	for i := range m.recs {
		p := m.info.Partitioner.Partition(m.reckey(m.recs[i]), m.info.NumPartitions)
		m.recs[i].partition = p
		// Count distinct partitions with a linear scan: Map calls emit
		// few records, so this beats allocating a set.
		fresh := true
		for j := 0; j < i; j++ {
			if m.recs[j].partition == p {
				fresh = false
				break
			}
		}
		if fresh {
			touched++
		}
	}
	return touched
}

// encodeAndEmit realizes Algorithm 1 / Algorithm 3 with the per-partition
// adaptive choice of §6.1: group this call's records by partition, build
// the EagerSH encoding (grouped by value within the partition), compare
// its size against the LazySH encoding, and emit the smaller. Ties favor
// EagerSH so jobs with one output per input (e.g. Sort, §7.1) degrade to
// plain records instead of paying Map re-execution. With
// Options.UniformChoice, one decision covers the whole Map call (the
// DESIGN.md ablation for the paper's per-partition argument in §6.1).
func (m *antiMapper) encodeAndEmit(out mr.Emitter, inputKey, inputValue []byte, hasInput, underThreshold bool) error {
	if len(m.recs) == 0 {
		return nil
	}
	m.nOrigRecords += int64(len(m.recs))
	for _, r := range m.recs {
		m.nOrigBytes += int64(bytesx.RecordLen(m.reckey(r), m.recvalue(r)))
	}

	// Records were captured in emission order; a stable partition sort
	// groups them without disturbing in-partition order. Calls whose
	// output is already grouped (the common one-record case) skip it.
	if !partitionsGrouped(m.recs) {
		sort.SliceStable(m.recs, func(i, j int) bool {
			return m.recs[i].partition < m.recs[j].partition
		})
	}

	choice := m.callChoice(inputKey, inputValue, hasInput, underThreshold)
	for start := 0; start < len(m.recs); {
		end := start
		p := m.recs[start].partition
		for end < len(m.recs) && m.recs[end].partition == p {
			end++
		}
		if err := m.emitPartition(out, m.recs[start:end], inputKey, inputValue, choice); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// callChoice derives the encoding decision that applies to every
// partition of this Map call, or choiceAuto for per-partition decisions.
func (m *antiMapper) callChoice(inputKey, inputValue []byte, hasInput, underThreshold bool) encodeChoice {
	lazyPossible := hasInput && m.lazyAllowed
	switch {
	case !lazyPossible:
		return choiceEager
	case m.opts.Strategy == LazyOnly:
		return choiceLazy
	case m.opts.Strategy == EagerOnly, !underThreshold:
		return choiceEager
	case m.opts.UniformChoice:
		// One decision for the whole call: total eager bytes vs total
		// lazy bytes across all touched partitions.
		var eagerTotal, lazyTotal int
		for start := 0; start < len(m.recs); {
			end := start
			p := m.recs[start].partition
			for end < len(m.recs) && m.recs[end].partition == p {
				end++
			}
			recs := m.recs[start:end]
			groups := m.buildEagerGroups(recs, m.info.KeyCompare)
			eagerTotal += m.eagerBytes(recs, groups)
			lazyTotal += m.lazyBytes(recs, inputKey, inputValue)
			start = end
		}
		if lazyTotal < eagerTotal {
			return choiceLazy
		}
		return choiceEager
	}
	return choiceAuto
}

// eagerGroup is one (partition, value) sharing group.
type eagerGroup struct {
	rep    int   // index of the record holding the minimal key
	others []int // indices of the remaining records in the group
}

// eagerBytes is the framed size of one partition's EagerSH encoding.
func (m *antiMapper) eagerBytes(recs []capturedRec, groups []eagerGroup) int {
	total := 0
	for gi := range groups {
		g := &groups[gi]
		keysLen := 0
		for _, oi := range g.others {
			k := m.reckey(recs[oi])
			keysLen += bytesx.UvarintLen(uint64(len(k))) + len(k)
		}
		repKey := m.reckey(recs[g.rep])
		var valLen int
		if len(g.others) == 0 {
			valLen = PlainValueSize(m.recvalue(recs[g.rep]))
		} else {
			valLen = 1 + bytesx.UvarintLen(uint64(len(g.others))) + keysLen + len(m.recvalue(recs[g.rep]))
		}
		total += bytesx.UvarintLen(uint64(len(repKey))) + len(repKey) +
			bytesx.UvarintLen(uint64(valLen)) + valLen
	}
	return total
}

// lazyBytes is the framed size of one partition's LazySH encoding.
func (m *antiMapper) lazyBytes(recs []capturedRec, inputKey, inputValue []byte) int {
	lazyKey := m.reckey(recs[m.minKeyIndex(recs)])
	valLen := LazyValueSize(inputKey, inputValue)
	return bytesx.UvarintLen(uint64(len(lazyKey))) + len(lazyKey) +
		bytesx.UvarintLen(uint64(valLen)) + valLen
}

func (m *antiMapper) minKeyIndex(recs []capturedRec) int {
	cmp := m.info.KeyCompare
	minIdx := 0
	for i := range recs {
		if cmp(m.reckey(recs[i]), m.reckey(recs[minIdx])) < 0 {
			minIdx = i
		}
	}
	return minIdx
}

// emitPartition encodes and emits one partition's share of a Map call.
func (m *antiMapper) emitPartition(out mr.Emitter, recs []capturedRec, inputKey, inputValue []byte, choice encodeChoice) error {
	groups := m.buildEagerGroups(recs, m.info.KeyCompare)

	useLazy := choice == choiceLazy
	if choice == choiceAuto {
		useLazy = m.lazyBytes(recs, inputKey, inputValue) < m.eagerBytes(recs, groups)
	}

	if useLazy {
		m.scratch = m.scratch[:0]
		m.scratch = AppendLazyValue(m.scratch, inputKey, inputValue)
		m.nLazy++
		return out.Emit(m.reckey(recs[m.minKeyIndex(recs)]), m.scratch)
	}

	for gi := range groups {
		g := &groups[gi]
		m.scratch = m.scratch[:0]
		if len(g.others) == 0 {
			m.scratch = AppendPlainValue(m.scratch, m.recvalue(recs[g.rep]))
			m.nPlain++
		} else {
			m.keybuf = m.keybuf[:0]
			for _, oi := range g.others {
				m.keybuf = append(m.keybuf, m.reckey(recs[oi]))
			}
			m.scratch = AppendEagerValue(m.scratch, m.keybuf, m.recvalue(recs[g.rep]))
			m.nEager++
		}
		if err := out.Emit(m.reckey(recs[g.rep]), m.scratch); err != nil {
			return err
		}
	}
	return nil
}

// buildEagerGroups groups one partition's records by identical value,
// choosing each group's minimal key as representative (Algorithm 1's
// GROUP BY getPartition(key), value).
func (m *antiMapper) buildEagerGroups(recs []capturedRec, cmp bytesx.Compare) []eagerGroup {
	groups := m.resetGroups()
	if len(recs) == 1 {
		return append(groups, eagerGroup{rep: 0})
	}
	// Small partitions (the overwhelmingly common case) group by linear
	// value comparison; larger ones switch to a hash index.
	if len(recs) <= 8 {
		return m.buildEagerGroupsLinear(recs, cmp)
	}
	index := make(map[string]int, len(recs))
	for i := range recs {
		v := string(m.recvalue(recs[i]))
		gi, ok := index[v]
		if !ok {
			index[v] = len(groups)
			groups = append(groups, eagerGroup{rep: i})
			continue
		}
		g := &groups[gi]
		if cmp(m.reckey(recs[i]), m.reckey(recs[g.rep])) < 0 {
			g.others = append(g.others, g.rep)
			g.rep = i
		} else {
			g.others = append(g.others, i)
		}
	}
	m.groups = groups
	return groups
}

// resetGroups recycles the group buffer (and the key-set slices inside
// it) so steady-state encoding does not allocate.
func (m *antiMapper) resetGroups() []eagerGroup {
	for i := range m.groups {
		m.groups[i].others = m.groups[i].others[:0]
	}
	m.groups = m.groups[:0]
	return m.groups
}

// buildEagerGroupsLinear is buildEagerGroups for small partitions,
// avoiding the map allocation.
func (m *antiMapper) buildEagerGroupsLinear(recs []capturedRec, cmp bytesx.Compare) []eagerGroup {
	groups := m.resetGroups()
outer:
	for i := range recs {
		v := m.recvalue(recs[i])
		for gi := range groups {
			g := &groups[gi]
			if bytes.Equal(m.recvalue(recs[g.rep]), v) {
				if cmp(m.reckey(recs[i]), m.reckey(recs[g.rep])) < 0 {
					g.others = append(g.others, g.rep)
					g.rep = i
				} else {
					g.others = append(g.others, i)
				}
				continue outer
			}
		}
		groups = append(groups, eagerGroup{rep: i})
	}
	m.groups = groups
	return groups
}

// partitionsGrouped reports whether equal partitions are already
// contiguous (trivially true for 0 or 1 records).
func partitionsGrouped(recs []capturedRec) bool {
	for i := 1; i < len(recs); i++ {
		if recs[i].partition != recs[i-1].partition {
			// Any earlier occurrence of this partition means a gap.
			for j := 0; j < i-1; j++ {
				if recs[j].partition == recs[i].partition {
					return false
				}
			}
		}
	}
	return true
}
