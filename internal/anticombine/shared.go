package anticombine

import (
	"container/heap"
	"errors"
	"fmt"
	"io"

	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/mr"
	"repro/internal/obs"
)

// combineBatch is how many values accumulate per key before the
// combine-on-insert path folds them into one record. Combining in
// batches keeps Shared's memory within a small constant factor of the
// one-record-per-key ideal (§5) while amortizing combiner invocations.
const combineBatch = 16

// Shared is the reduce-task-level structure of §5 that carries decoded
// key/value pairs between Reduce calls. It keeps a min-heap over
// distinct keys plus a hash table from key to values; when the memory
// budget is exceeded, the content is written to a spill file in sorted
// key order (mirroring the map phase's sort-and-spill), and spill files
// are merged when they exceed the merge threshold. Reads are strictly
// in ascending key order — PeekMinKey / PopMinKeyValues — so spilled
// runs are consumed by buffered sequential reads, never random access.
//
// With a combiner attached, values are combined on insert so each key
// keeps (nearly) a single record ("Using Combine in the Reduce Phase",
// §5), which in the paper's Table 2 keeps Shared entirely in memory.
type Shared struct {
	cmp      bytesx.Compare
	groupCmp bytesx.Compare

	keys    entryHeap
	entries map[string]*sharedEntry
	mem     int

	memLimit    int
	mergeFactor int
	fs          iokit.FS
	prefix      string
	spillSeq    int
	runs        []*sharedRun
	counters    *mr.Counters
	tracer      *obs.Tracer

	combiner mr.Reducer
	spills   int64
}

// sharedEntry owns one key's canonical bytes and values. combinedLen
// remembers the value count the last combine produced, so keys whose
// values the combiner cannot shrink (e.g. distinct-query lists) are
// recombined only after the list doubles — amortized linear instead of
// quadratic.
type sharedEntry struct {
	key         []byte
	values      [][]byte
	combinedLen int
}

// SharedConfig configures a Shared instance.
type SharedConfig struct {
	// KeyCompare orders keys; required.
	KeyCompare bytesx.Compare
	// GroupCompare decides key equality for PopMinKeyValues; defaults
	// to KeyCompare.
	GroupCompare bytesx.Compare
	// MemLimitBytes caps in-memory key+value bytes before spilling.
	// Defaults to 1 MiB.
	MemLimitBytes int
	// MergeFactor caps spill runs before they are merged. Defaults to 10.
	MergeFactor int
	// FS receives spill files; required if spilling can occur.
	FS iokit.FS
	// Prefix names spill files.
	Prefix string
	// Combiner, if set, combines values per key on insert (in batches).
	Combiner mr.Reducer
	// Counters, if set, receives the "anti.sharedSpills" and
	// "anti.sharedMerges" counters.
	Counters *mr.Counters
	// Tracer, if set, receives shared-spill and shared-merge spans.
	Tracer *obs.Tracer
}

// NewShared builds an empty Shared.
func NewShared(cfg SharedConfig) *Shared {
	if cfg.GroupCompare == nil {
		cfg.GroupCompare = cfg.KeyCompare
	}
	if cfg.MemLimitBytes <= 0 {
		cfg.MemLimitBytes = 1 << 20
	}
	if cfg.MergeFactor < 2 {
		cfg.MergeFactor = 10
	}
	return &Shared{
		cmp:         cfg.KeyCompare,
		groupCmp:    cfg.GroupCompare,
		keys:        entryHeap{cmp: cfg.KeyCompare},
		entries:     make(map[string]*sharedEntry),
		memLimit:    cfg.MemLimitBytes,
		mergeFactor: cfg.MergeFactor,
		fs:          cfg.FS,
		prefix:      cfg.Prefix,
		counters:    cfg.Counters,
		tracer:      cfg.Tracer,
		combiner:    cfg.Combiner,
	}
}

// Add inserts one decoded key/value pair. Both slices are copied.
func (s *Shared) Add(key, value []byte) error {
	e, ok := s.entries[string(key)]
	if !ok {
		e = &sharedEntry{key: bytesx.Clone(key)}
		s.entries[string(e.key)] = e
		heap.Push(&s.keys, e)
		s.mem += len(e.key)
	}
	e.values = append(e.values, bytesx.Clone(value))
	s.mem += len(value)
	if s.combiner != nil && len(e.values) >= combineBatch && len(e.values) >= 2*e.combinedLen {
		if err := s.combineEntry(e); err != nil {
			return err
		}
	}
	if s.mem > s.memLimit {
		return s.spill()
	}
	return nil
}

// combineEntry folds an entry's values into the combiner's output,
// keeping (usually) a single record per key.
func (s *Shared) combineEntry(e *sharedEntry) error {
	for _, v := range e.values {
		s.mem -= len(v)
	}
	old := e.values
	i := 0
	vi := valueIterFunc(func() ([]byte, bool) {
		if i >= len(old) {
			return nil, false
		}
		v := old[i]
		i++
		return v, true
	})
	var combined [][]byte
	emit := mr.EmitterFunc(func(_, v []byte) error {
		combined = append(combined, bytesx.Clone(v))
		return nil
	})
	if err := s.combiner.Reduce(e.key, vi, emit); err != nil {
		return err
	}
	if len(combined) == 0 {
		return errors.New("anticombine: combiner emitted no output for Shared insert")
	}
	e.values = combined
	e.combinedLen = len(combined)
	for _, v := range combined {
		s.mem += len(v)
	}
	return nil
}

type valueIterFunc func() ([]byte, bool)

func (f valueIterFunc) Next() ([]byte, bool) { return f() }

// Empty reports whether no keys remain, in memory or spilled.
func (s *Shared) Empty() bool { return s.keys.Len() == 0 && len(s.runs) == 0 }

// peekMinInternal returns the smallest key present without cloning. The
// slice is only valid until the next mutation.
func (s *Shared) peekMinInternal() ([]byte, bool) {
	var best []byte
	if s.keys.Len() > 0 {
		best = s.keys.entries[0].key
	}
	for _, r := range s.runs {
		if r.done {
			continue
		}
		if best == nil || s.cmp(r.headKey, best) < 0 {
			best = r.headKey
		}
	}
	return best, best != nil
}

// PeekMinKey returns (a copy of) the smallest key present.
func (s *Shared) PeekMinKey() ([]byte, bool) {
	best, ok := s.peekMinInternal()
	if !ok {
		return nil, false
	}
	return bytesx.Clone(best), true
}

// PopMinKeyValues removes the smallest key group (all keys equal under
// the grouping comparator) and returns its key and values. Values are
// gathered from memory and spill runs in ascending full-key order —
// "since records are removed from Shared in key order, the values
// passed to o_reducer.reduce are in key order" (§6.1) — which is what
// secondary-sort programs rely on.
func (s *Shared) PopMinKeyValues() (key []byte, values [][]byte, err error) {
	key, ok := s.PeekMinKey()
	if !ok {
		return nil, nil, errors.New("anticombine: PopMinKeyValues on empty Shared")
	}
	scratch := make([]byte, 0, len(key))
	for {
		cur, ok := s.peekMinInternal()
		if !ok || s.groupCmp(cur, key) != 0 {
			break
		}
		// cur aliases mutable state; keep a private copy for the
		// equality scans below.
		scratch = append(scratch[:0], cur...)

		// Drain the in-memory entry for exactly this key first, then
		// matching spill-run heads (duplicate-key order between the two
		// sources is unspecified, as in Hadoop).
		for s.keys.Len() > 0 && s.cmp(s.keys.entries[0].key, scratch) == 0 {
			e := heap.Pop(&s.keys).(*sharedEntry)
			delete(s.entries, string(e.key))
			s.mem -= len(e.key)
			for _, v := range e.values {
				s.mem -= len(v)
			}
			values = append(values, e.values...)
		}
		// The head buffers are reused by advance, so values are cloned.
		for _, r := range s.runs {
			for !r.done && s.cmp(r.headKey, scratch) == 0 {
				values = append(values, bytesx.Clone(r.headVal))
				if err := r.advance(); err != nil {
					return nil, nil, err
				}
			}
		}
		if err := s.dropFinishedRuns(); err != nil {
			return nil, nil, err
		}
	}
	return key, values, nil
}

// dropFinishedRuns prunes fully consumed runs and deletes their spill
// files — a long job cycles through many runs, and keeping consumed
// files would leak disk linearly with spill count.
func (s *Shared) dropFinishedRuns() error {
	live := s.runs[:0]
	var firstErr error
	for _, r := range s.runs {
		if r.done {
			if err := s.fs.Remove(r.name); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		live = append(live, r)
	}
	s.runs = live
	return firstErr
}

// Spills reports how many times Shared spilled to disk.
func (s *Shared) Spills() int { return int(s.spills) }

// spill writes the in-memory content to a new sorted run, then merges
// runs if they exceed the merge factor.
func (s *Shared) spill() error {
	if s.fs == nil {
		return errors.New("anticombine: Shared memory limit exceeded and no spill FS configured")
	}
	name := fmt.Sprintf("%s/shared-spill%04d", s.prefix, s.spillSeq)
	s.spillSeq++
	s.spills++
	if s.counters != nil {
		s.counters.AddExtra(CounterSharedSpills, 1)
	}
	span := s.tracer.Start(obs.KindSharedSpill, name)
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	w := bytesx.NewWriter(f)
	for s.keys.Len() > 0 {
		e := heap.Pop(&s.keys).(*sharedEntry)
		delete(s.entries, string(e.key))
		for _, v := range e.values {
			if err := w.WriteRecord(e.key, v); err != nil {
				f.Close()
				return err
			}
		}
	}
	s.mem = 0
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	span.End(obs.Int("records", w.Records()), obs.Int("bytes", w.Bytes()))
	run, err := openSharedRun(s.fs, name)
	if err != nil {
		return err
	}
	if run != nil {
		s.runs = append(s.runs, run)
	}
	if len(s.runs) > s.mergeFactor {
		return s.mergeRuns()
	}
	return nil
}

// mergeRuns merges all current runs into a single sorted run, mirroring
// the map phase's spill merge (§5). The consumed pre-merge run files
// are deleted only after the merged run is durably written and
// reopened; on a mid-merge error the partially written merge file is
// closed and removed while the source runs stay intact on disk (their
// readers, if still open, are released by Close).
func (s *Shared) mergeRuns() error {
	name := fmt.Sprintf("%s/shared-merge%04d", s.prefix, s.spillSeq)
	s.spillSeq++
	if s.counters != nil {
		s.counters.AddExtra(CounterSharedMerges, 1)
	}
	span := s.tracer.Start(obs.KindSharedMerge, name, obs.Int("runs", int64(len(s.runs))))
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	// abort closes and best-effort deletes the partial merge output.
	abort := func() {
		f.Close()
		s.fs.Remove(name)
	}
	w := bytesx.NewWriter(f)
	h := runHeap{cmp: s.cmp, runs: append([]*sharedRun(nil), s.runs...)}
	heap.Init(&h)
	for h.Len() > 0 {
		r := h.runs[0]
		if err := w.WriteRecord(r.headKey, r.headVal); err != nil {
			abort()
			return err
		}
		if err := r.advance(); err != nil {
			abort()
			return err
		}
		if r.done {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	if err := w.Flush(); err != nil {
		abort()
		return err
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(name)
		return err
	}
	span.End(obs.Int("records", w.Records()), obs.Int("bytes", w.Bytes()))
	// The merge succeeded: the source runs are fully consumed (their
	// readers closed at EOF), so delete their files before swapping in
	// the merged run.
	var removeErr error
	for _, r := range s.runs {
		if err := s.fs.Remove(r.name); err != nil && removeErr == nil {
			removeErr = err
		}
	}
	s.runs = nil
	if removeErr != nil {
		return removeErr
	}
	run, err := openSharedRun(s.fs, name)
	if err != nil {
		return err
	}
	if run != nil {
		s.runs = append(s.runs, run)
	}
	return nil
}

// Close releases any open spill run readers and deletes their backing
// files — long jobs create and close many Shared instances, so leaving
// run files behind would leak disk linearly.
func (s *Shared) Close() error {
	var firstErr error
	for _, r := range s.runs {
		if err := r.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.fs.Remove(r.name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.runs = nil
	return firstErr
}

// sharedRun is a buffered sequential cursor over one sorted spill file.
type sharedRun struct {
	r                *bytesx.Reader
	closer           io.Closer
	name             string
	headKey, headVal []byte
	done             bool
}

// openSharedRun opens a run and primes its head record. A run with no
// records is closed, deleted, and returned as nil.
func openSharedRun(fs iokit.FS, name string) (*sharedRun, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	run := &sharedRun{r: bytesx.NewReader(f), closer: f, name: name}
	if err := run.advance(); err != nil {
		return nil, err
	}
	if run.done {
		return nil, fs.Remove(name)
	}
	return run, nil
}

// advance reads the next head record, closing the reader on every
// terminal path: EOF and read errors alike (an error here is fatal for
// the run, so holding the file open would leak the handle).
func (r *sharedRun) advance() error {
	k, v, err := r.r.ReadRecord()
	if errors.Is(err, io.EOF) {
		r.done = true
		return r.close()
	}
	if err != nil {
		r.close()
		return err
	}
	r.headKey = append(r.headKey[:0], k...)
	r.headVal = append(r.headVal[:0], v...)
	return nil
}

func (r *sharedRun) close() error {
	if r.closer == nil {
		return nil
	}
	c := r.closer
	r.closer = nil
	return c.Close()
}

// entryHeap is a min-heap over distinct in-memory key entries. Holding
// the entries themselves keeps comparisons allocation-free.
type entryHeap struct {
	entries []*sharedEntry
	cmp     bytesx.Compare
}

func (h entryHeap) Len() int { return len(h.entries) }
func (h entryHeap) Less(i, j int) bool {
	return h.cmp(h.entries[i].key, h.entries[j].key) < 0
}
func (h entryHeap) Swap(i, j int)       { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *entryHeap) Push(x interface{}) { h.entries = append(h.entries, x.(*sharedEntry)) }
func (h *entryHeap) Pop() interface{} {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

// runHeap orders spill runs by head key for merging.
type runHeap struct {
	runs []*sharedRun
	cmp  bytesx.Compare
}

func (h runHeap) Len() int            { return len(h.runs) }
func (h runHeap) Less(i, j int) bool  { return h.cmp(h.runs[i].headKey, h.runs[j].headKey) < 0 }
func (h runHeap) Swap(i, j int)       { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *runHeap) Push(x interface{}) { h.runs = append(h.runs, x.(*sharedRun)) }
func (h *runHeap) Pop() interface{} {
	old := h.runs
	n := len(old)
	r := old[n-1]
	h.runs = old[:n-1]
	return r
}
