package anticombine

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPlainRoundTrip(t *testing.T) {
	buf := AppendPlainValue(nil, []byte("hello"))
	if len(buf) != PlainValueSize([]byte("hello")) {
		t.Errorf("size mismatch: %d vs %d", len(buf), PlainValueSize([]byte("hello")))
	}
	dec, err := DecodeValue(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Enc != EncPlain || string(dec.Value) != "hello" {
		t.Errorf("decoded %+v", dec)
	}
}

func TestEagerRoundTrip(t *testing.T) {
	keys := [][]byte{[]byte("man"), []byte("mango")}
	buf := AppendEagerValue(nil, keys, []byte("mango"))
	if len(buf) != EagerValueSize(keys, []byte("mango")) {
		t.Errorf("size mismatch: %d vs %d", len(buf), EagerValueSize(keys, []byte("mango")))
	}
	dec, err := DecodeValue(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Enc != EncEager || string(dec.Value) != "mango" || len(dec.OtherKeys) != 2 {
		t.Fatalf("decoded %+v", dec)
	}
	if string(dec.OtherKeys[0]) != "man" || string(dec.OtherKeys[1]) != "mango" {
		t.Errorf("keys %q", dec.OtherKeys)
	}
}

func TestEagerEmptyKeys(t *testing.T) {
	buf := AppendEagerValue(nil, nil, []byte("v"))
	dec, err := DecodeValue(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Enc != EncEager || len(dec.OtherKeys) != 0 || string(dec.Value) != "v" {
		t.Errorf("decoded %+v", dec)
	}
}

func TestLazyRoundTrip(t *testing.T) {
	buf := AppendLazyValue(nil, []byte("inkey"), []byte("invalue"))
	if len(buf) != LazyValueSize([]byte("inkey"), []byte("invalue")) {
		t.Errorf("size mismatch")
	}
	dec, err := DecodeValue(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Enc != EncLazy || string(dec.InputKey) != "inkey" || string(dec.InputValue) != "invalue" {
		t.Errorf("decoded %+v", dec)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{99},             // unknown flag
		{EncEager},       // missing count
		{EncEager, 2, 5}, // truncated key
		{EncEager, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // absurd count
		{EncLazy},       // missing input key
		{EncLazy, 9, 1}, // truncated input key
	}
	for i, b := range bad {
		if _, err := DecodeValue(b); err == nil {
			t.Errorf("case %d: expected error for %v", i, b)
		}
	}
}

func TestEncodePropertyRoundTrip(t *testing.T) {
	eager := func(k1, k2, v []byte) bool {
		buf := AppendEagerValue(nil, [][]byte{k1, k2}, v)
		if len(buf) != EagerValueSize([][]byte{k1, k2}, v) {
			return false
		}
		dec, err := DecodeValue(buf)
		return err == nil && dec.Enc == EncEager &&
			bytes.Equal(dec.OtherKeys[0], k1) && bytes.Equal(dec.OtherKeys[1], k2) &&
			bytes.Equal(dec.Value, v)
	}
	if err := quick.Check(eager, nil); err != nil {
		t.Error(err)
	}
	lazy := func(k, v []byte) bool {
		buf := AppendLazyValue(nil, k, v)
		dec, err := DecodeValue(buf)
		return err == nil && dec.Enc == EncLazy &&
			bytes.Equal(dec.InputKey, k) && bytes.Equal(dec.InputValue, v) &&
			len(buf) == LazyValueSize(k, v)
	}
	if err := quick.Check(lazy, nil); err != nil {
		t.Error(err)
	}
}
