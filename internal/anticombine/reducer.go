package anticombine

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mr"
)

// instanceSeq disambiguates Shared spill-file prefixes across the many
// reducer/combiner instances a job creates.
var instanceSeq atomic.Int64

// antiWorkspace roots Shared scratch files in the job's file namespace
// (TaskInfo.Workspace), falling back to JobName for callers that build a
// TaskInfo by hand without one.
func antiWorkspace(info *mr.TaskInfo) string {
	if info.Workspace != "" {
		return info.Workspace
	}
	return info.JobName
}

// antiReducer is the paper's AntiReducer (Figure 8). It also serves as
// the transformed Combiner (§6.1: "a Combiner is defined as a reducer
// class, hence we apply the same syntactic transformation"): in combiner
// mode the inner reducer is the original combiner and every emitted
// value is re-encoded as a plain record so downstream decoding still
// works. Because the engine feeds both reducers and combiners their key
// groups in ascending key order and calls Cleanup at the end, the
// drain-Shared discipline keeps output keys ascending in both modes.
type antiReducer struct {
	inner       mr.Reducer
	newMapper   func() mr.Mapper
	newCombiner func() mr.Reducer
	opts        Options
	combineMode bool

	info    *mr.TaskInfo
	oMapper mr.Mapper
	shared  *Shared
	out     mr.Emitter // wrapped output (plain-encodes in combiner mode)
	scratch []byte

	nReexec int64 // batched CounterMapReexec, flushed at Cleanup
}

// Setup implements mr.Reducer.
func (r *antiReducer) Setup(info *mr.TaskInfo, out mr.Emitter) error {
	r.info = info

	var sharedCombiner mr.Reducer
	if r.newCombiner != nil && !r.opts.DisableSharedCombine {
		sharedCombiner = r.newCombiner()
		if err := sharedCombiner.Setup(info, discardEmitter{}); err != nil {
			return err
		}
	}
	r.shared = NewShared(SharedConfig{
		KeyCompare:    info.KeyCompare,
		GroupCompare:  info.GroupCompare,
		MemLimitBytes: r.opts.SharedMemLimitBytes,
		MergeFactor:   r.opts.SharedMergeFactor,
		FS:            info.FS,
		Prefix: fmt.Sprintf("%s/anti/t%04d-p%04d-i%d",
			antiWorkspace(info), info.TaskID, info.Partition, instanceSeq.Add(1)),
		Combiner: sharedCombiner,
		Counters: info.Counters,
		Tracer:   info.Tracer,
	})

	// The original Map is needed on this side to decode LazySH records.
	r.oMapper = r.newMapper()
	if err := r.oMapper.Setup(info, discardEmitter{}); err != nil {
		return err
	}
	return r.inner.Setup(info, r.wrapOut(out))
}

// wrapOut re-encodes emitted values as plain records in combiner mode so
// the reduce phase can still decode the stream.
func (r *antiReducer) wrapOut(out mr.Emitter) mr.Emitter {
	if !r.combineMode {
		return out
	}
	return mr.EmitterFunc(func(k, v []byte) error {
		r.scratch = AppendPlainValue(r.scratch[:0], v)
		return out.Emit(k, r.scratch)
	})
}

// Reduce implements mr.Reducer, realizing Algorithms 2 and 4: drain
// Shared below the current key, decode this key's records into Shared,
// then run the original Reduce on the key's union of values.
func (r *antiReducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	wrapped := r.wrapOut(out)
	if err := r.drainBelow(key, wrapped); err != nil {
		return err
	}
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		if err := r.decodeInto(key, v); err != nil {
			return err
		}
	}
	// Everything this Reduce call owes the original program now sits in
	// Shared under the current key (decoded keys are all >= key, because
	// encoding chose the minimal key as representative).
	if mk, ok := r.shared.PeekMinKey(); ok && r.info.GroupCompare(mk, key) == 0 {
		gk, vals, err := r.shared.PopMinKeyValues()
		if err != nil {
			return err
		}
		return r.inner.Reduce(gk, sliceIter(vals), wrapped)
	}
	return nil
}

// decodeInto decodes one encoded value component into Shared.
func (r *antiReducer) decodeInto(key, raw []byte) error {
	dec, err := DecodeValue(raw)
	if err != nil {
		return err
	}
	switch dec.Enc {
	case EncPlain:
		return r.shared.Add(key, dec.Value)
	case EncEager:
		if err := r.shared.Add(key, dec.Value); err != nil {
			return err
		}
		for _, ok := range dec.OtherKeys {
			if err := r.shared.Add(ok, dec.Value); err != nil {
				return err
			}
		}
		return nil
	case EncLazy:
		return r.reexecuteMap(dec.InputKey, dec.InputValue)
	}
	return fmt.Errorf("%w: flag %d", ErrBadEncoding, dec.Enc)
}

// reexecuteMap regenerates a LazySH record's Map output on this reducer,
// keeping only the pairs the Partitioner assigns here (Algorithm 4,
// lines 6-10).
func (r *antiReducer) reexecuteMap(inputKey, inputValue []byte) error {
	r.nReexec++
	var addErr error
	err := r.oMapper.Map(inputKey, inputValue, mr.EmitterFunc(func(k, v []byte) error {
		if r.info.Partitioner.Partition(k, r.info.NumPartitions) != r.info.Partition {
			return nil
		}
		if err := r.shared.Add(k, v); err != nil {
			addErr = err
			return err
		}
		return nil
	}))
	if addErr != nil {
		return addErr
	}
	return err
}

// drainBelow runs the original Reduce for every Shared key group below
// key (the repeat-until loop of Algorithms 2 and 4).
func (r *antiReducer) drainBelow(key []byte, wrapped mr.Emitter) error {
	for {
		altKey, ok := r.shared.PeekMinKey()
		if !ok || r.info.GroupCompare(altKey, key) >= 0 {
			return nil
		}
		gk, vals, err := r.shared.PopMinKeyValues()
		if err != nil {
			return err
		}
		if err := r.inner.Reduce(gk, sliceIter(vals), wrapped); err != nil {
			return err
		}
	}
}

// Cleanup implements mr.Reducer: the remaining Shared keys — those never
// seen as representative keys in the regular input — get their Reduce
// calls here (§3.2's clean-up drain), then the wrapped functions clean up.
func (r *antiReducer) Cleanup(out mr.Emitter) error {
	wrapped := r.wrapOut(out)
	for !r.shared.Empty() {
		gk, vals, err := r.shared.PopMinKeyValues()
		if err != nil {
			return err
		}
		if err := r.inner.Reduce(gk, sliceIter(vals), wrapped); err != nil {
			return err
		}
	}
	if err := r.shared.Close(); err != nil {
		return err
	}
	if err := r.oMapper.Cleanup(discardEmitter{}); err != nil {
		return err
	}
	r.info.Counters.AddExtra(CounterMapReexec, r.nReexec)
	r.nReexec = 0
	return r.inner.Cleanup(wrapped)
}

// sliceIter adapts a value slice to mr.ValueIter.
func sliceIter(vals [][]byte) mr.ValueIter {
	i := 0
	return valueIterFunc(func() ([]byte, bool) {
		if i >= len(vals) {
			return nil, false
		}
		v := vals[i]
		i++
		return v, true
	})
}

// discardEmitter swallows emissions from wrapped Setup/Cleanup hooks
// that have no legal output channel (e.g. the reducer-side Map object).
type discardEmitter struct{}

// Emit implements mr.Emitter.
func (discardEmitter) Emit(_, _ []byte) error { return nil }
