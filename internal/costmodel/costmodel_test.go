package costmodel

import (
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/mr"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/workloads/wordcount"
)

func TestEstimateComponents(t *testing.T) {
	c := Cluster{Workers: 2, CoresPerWorker: 2, DiskBps: 1000, Net: netsim.Gigabit(2)}
	stats := mr.Stats{
		MapCPU:         4 * time.Second,
		ReduceCPU:      4 * time.Second,
		DiskReadBytes:  5000,
		DiskWriteBytes: 5000,
	}
	e, err := c.Estimate(stats, []int64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if e.CPUTime != 2*time.Second { // 8s over 4 cores
		t.Errorf("CPUTime = %v", e.CPUTime)
	}
	if e.DiskTime != 5*time.Second { // 10000 bytes over 2×1000 Bps
		t.Errorf("DiskTime = %v", e.DiskTime)
	}
	if e.Runtime != 5*time.Second {
		t.Errorf("Runtime = %v, want disk-bound 5s", e.Runtime)
	}
	if !strings.Contains(e.String(), "runtime") {
		t.Error("String should render")
	}
}

func TestNetworkBoundJob(t *testing.T) {
	c := Paper()
	stats := mr.Stats{MapCPU: time.Second}
	// 11 partitions × 1 GB each: the shared gigabit fabric dominates.
	per := make([]int64, 11)
	for i := range per {
		per[i] = 1 << 30
	}
	e, err := c.Estimate(stats, per)
	if err != nil {
		t.Fatal(err)
	}
	if e.NetTime < 5*time.Second {
		t.Errorf("NetTime = %v; 11 GB over gigabit NICs should take seconds", e.NetTime)
	}
	if e.Runtime != e.NetTime {
		t.Errorf("job should be network-bound: %+v", e)
	}
}

func TestSmallerShuffleEstimatesFaster(t *testing.T) {
	// The headline claim end-to-end: a job whose shuffle shrinks must
	// estimate faster on a network-constrained cluster.
	c := Paper()
	stats := mr.Stats{}
	big, err := c.Estimate(stats, []int64{100 << 20, 100 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small, err := c.Estimate(stats, []int64{10 << 20, 10 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if small.Runtime*5 > big.Runtime {
		t.Errorf("10x smaller shuffle: %v vs %v", small.Runtime, big.Runtime)
	}
}

func TestEstimateFromRealJob(t *testing.T) {
	text := datagen.NewRandomText(datagen.RandomTextConfig{Seed: 71, Lines: 200})
	res, err := mr.Run(wordcount.NewJob(4), wordcount.Splits(text, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShufflePerPartition) != 4 {
		t.Fatalf("ShufflePerPartition = %v", res.ShufflePerPartition)
	}
	var sum int64
	for _, b := range res.ShufflePerPartition {
		sum += b
	}
	if sum != res.Stats.ShuffleBytes {
		t.Errorf("per-partition sum %d != total %d", sum, res.Stats.ShuffleBytes)
	}
	e, err := Paper().Estimate(res.Stats, res.ShufflePerPartition)
	if err != nil {
		t.Fatal(err)
	}
	if e.Runtime <= 0 {
		t.Errorf("estimate = %+v", e)
	}
}

func TestBadCluster(t *testing.T) {
	var c Cluster
	if _, err := c.Estimate(mr.Stats{}, nil); err == nil {
		t.Error("zero-core cluster should error")
	}
}

// TestObservedOverlap measures real map/fetch concurrency from a job's
// event timeline: a real pipelined run over enough splits should show
// positive overlap, and a synthetic serialized timeline shows zero.
func TestObservedOverlap(t *testing.T) {
	base := time.Unix(0, 0)
	serial := []sched.Attempt{
		{Task: "map/0", Group: mr.TaskGroupMap, Started: base, Finished: base.Add(time.Second)},
		{Task: "fetch/0/0", Group: mr.TaskGroupFetch, Started: base.Add(time.Second), Finished: base.Add(2 * time.Second)},
	}
	if ov := ObservedOverlap(serial); ov != 0 {
		t.Errorf("serialized timeline overlap = %v, want 0", ov)
	}
	piped := []sched.Attempt{
		{Task: "map/1", Group: mr.TaskGroupMap, Started: base, Finished: base.Add(3 * time.Second)},
		{Task: "fetch/0/0", Group: mr.TaskGroupFetch, Started: base.Add(time.Second), Finished: base.Add(2 * time.Second)},
	}
	if ov := ObservedOverlap(piped); ov != time.Second {
		t.Errorf("pipelined timeline overlap = %v, want 1s", ov)
	}
	if ov := ObservedOverlap(nil); ov != 0 {
		t.Errorf("empty timeline overlap = %v, want 0", ov)
	}
}
