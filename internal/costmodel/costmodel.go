// Package costmodel converts a job's measured resource totals — CPU
// time, disk bytes, shuffle bytes — into an estimated runtime on a
// parametric cluster. The paper ran on real hardware (11 workers, 4
// cores each, two SATA disks, one shared gigabit switch); this
// reproduction runs in one process, so runtime comparisons are
// regenerated through a bottleneck model: each resource's busy time is
// computed for the cluster, the network time via the netsim fair-share
// simulation, and the estimated runtime is the maximum of the three
// (MapReduce pipelines CPU, disk, and shuffle against each other, so
// the slowest resource dominates a well-tuned job).
package costmodel

import (
	"fmt"
	"time"

	"repro/internal/mr"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Cluster describes the modeled hardware.
type Cluster struct {
	// Workers is the worker machine count.
	Workers int
	// CoresPerWorker is each worker's core count.
	CoresPerWorker int
	// DiskBps is each worker's aggregate disk bandwidth (bytes/second).
	DiskBps float64
	// Net is the shuffle fabric.
	Net netsim.Network
}

// Paper returns the paper's testbed: 11 workers × 4 cores, two 7.2K
// SATA disks (~2×80 MB/s), one shared gigabit switch.
func Paper() Cluster {
	return Cluster{
		Workers:        11,
		CoresPerWorker: 4,
		DiskBps:        160e6,
		Net:            netsim.Gigabit(11),
	}
}

// Estimate is the per-resource breakdown of a job's modeled runtime.
type Estimate struct {
	// CPUTime is total task CPU divided over the cluster's cores.
	CPUTime time.Duration
	// DiskTime is total disk bytes divided over the workers' disks.
	DiskTime time.Duration
	// NetTime is the shuffle makespan from the fair-share simulation.
	NetTime time.Duration
	// Runtime is the bottleneck estimate: max of the three.
	Runtime time.Duration
}

// String renders the estimate for logs and tables.
func (e Estimate) String() string {
	return fmt.Sprintf("runtime≈%v (cpu=%v disk=%v net=%v)",
		e.Runtime.Round(time.Millisecond), e.CPUTime.Round(time.Millisecond),
		e.DiskTime.Round(time.Millisecond), e.NetTime.Round(time.Millisecond))
}

// Estimate models a finished job on the cluster. shufflePerPartition is
// each reduce partition's fetched bytes (mr.Result.ShufflePerPartition).
func (c Cluster) Estimate(stats mr.Stats, shufflePerPartition []int64) (Estimate, error) {
	var e Estimate
	cores := c.Workers * c.CoresPerWorker
	if cores <= 0 {
		return e, fmt.Errorf("costmodel: cluster has no cores")
	}
	e.CPUTime = stats.TotalCPU() / time.Duration(cores)

	diskBytes := float64(stats.DiskReadBytes + stats.DiskWriteBytes)
	e.DiskTime = time.Duration(diskBytes / (c.DiskBps * float64(c.Workers)) * float64(time.Second))

	net, err := c.Net.Makespan(c.Net.ShuffleFlows(shufflePerPartition))
	if err != nil {
		return e, err
	}
	e.NetTime = net

	e.Runtime = max(e.CPUTime, max(e.DiskTime, e.NetTime))
	return e, nil
}

// PartitionSkew summarizes per-partition flow bytes as max, mean, and
// max/mean — the balance figure the skew-aware partitioning layer
// (internal/partition) optimizes. Feed it either the predicted
// Stats.MapOutputPerPartition or the measured
// Result.ShufflePerPartition; on the shared-fabric netsim the shuffle
// makespan tracks the max flow, so the ratio is also the network-time
// penalty of imbalance.
func PartitionSkew(flows []int64) (maxBytes, meanBytes int64, ratio float64) {
	if len(flows) == 0 {
		return 0, 0, 0
	}
	var sum int64
	for _, f := range flows {
		if f > maxBytes {
			maxBytes = f
		}
		sum += f
	}
	meanBytes = sum / int64(len(flows))
	if meanBytes > 0 {
		ratio = float64(maxBytes) / float64(meanBytes)
	}
	return maxBytes, meanBytes, ratio
}

// ObservedOverlap measures, from a finished job's event timeline
// (mr.Result.Timeline), how long shuffle fetches actually ran
// concurrently with still-executing map tasks. The bottleneck model
// above *assumes* CPU, disk, and network pipeline against each other;
// under the pipelined scheduler this turns that assumption into a
// measurement — a zero overlap (as the barrier engine produces) means
// the shuffle phase serialized behind the map phase and the max() in
// Estimate is optimistic by up to NetTime.
func ObservedOverlap(timeline []sched.Attempt) time.Duration {
	return sched.Overlap(timeline, mr.TaskGroupMap, mr.TaskGroupFetch)
}

// ObservedOverlapSpans is ObservedOverlap over a trace: when a run was
// captured with an obs.Tracer, the map/fetch overlap can be measured
// from the span log directly — the same spans a Chrome trace shows
// visually — without threading Result.Timeline around.
func ObservedOverlapSpans(spans []obs.Span) time.Duration {
	return obs.Overlap(spans, obs.KindMap, obs.KindFetch)
}
