package iokit

import (
	"errors"
	"io"
	"testing"
)

func testFS(t *testing.T, fs FS) {
	t.Helper()

	// Create and read back.
	w, err := fs.Create("a/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Open("a/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if string(data) != "hello world" {
		t.Errorf("got %q", data)
	}

	// Size.
	if sz, err := fs.Size("a/b.txt"); err != nil || sz != 11 {
		t.Errorf("Size = %d, %v", sz, err)
	}

	// List.
	w2, _ := fs.Create("c.txt")
	w2.Close()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a/b.txt" || names[1] != "c.txt" {
		t.Errorf("List = %v", names)
	}

	// Missing file errors.
	if _, err := fs.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open(missing) = %v", err)
	}
	if _, err := fs.Size("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Size(missing) = %v", err)
	}
	if err := fs.Remove("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Remove(missing) = %v", err)
	}

	// Remove.
	if err := fs.Remove("c.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("c.txt"); !errors.Is(err, ErrNotExist) {
		t.Error("c.txt should be gone")
	}

	// Overwrite truncates.
	w3, _ := fs.Create("a/b.txt")
	w3.Write([]byte("x"))
	w3.Close()
	if sz, _ := fs.Size("a/b.txt"); sz != 1 {
		t.Errorf("overwrite size = %d", sz)
	}
}

func TestMemFS(t *testing.T) { testFS(t, NewMemFS()) }

func TestOSFS(t *testing.T) { testFS(t, NewOSFS(t.TempDir())) }

func TestMetered(t *testing.T) {
	var m Meter
	fs := Metered(NewMemFS(), &m)
	w, _ := fs.Create("f")
	w.Write(make([]byte, 100))
	w.Write(make([]byte, 50))
	w.Close()
	if m.WriteBytes() != 150 {
		t.Errorf("WriteBytes = %d", m.WriteBytes())
	}
	if m.WriteOps() != 2 {
		t.Errorf("WriteOps = %d", m.WriteOps())
	}
	r, _ := fs.Open("f")
	io.ReadAll(r)
	r.Close()
	if m.ReadBytes() != 150 {
		t.Errorf("ReadBytes = %d", m.ReadBytes())
	}
	m.Reset()
	if m.ReadBytes() != 0 || m.WriteBytes() != 0 {
		t.Error("Reset did not zero counters")
	}
	if m.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestCountingWriterReader(t *testing.T) {
	var m Meter
	mem := NewMemFS()
	inner, _ := mem.Create("f")
	cw := &CountingWriter{W: inner, M: &m}
	cw.Write([]byte("abcdef"))
	inner.Close()
	if cw.N != 6 || m.WriteBytes() != 6 {
		t.Errorf("CountingWriter N=%d meter=%d", cw.N, m.WriteBytes())
	}
	r, _ := mem.Open("f")
	cr := &CountingReader{R: r, M: &m}
	io.ReadAll(cr)
	if cr.N != 6 || m.ReadBytes() != 6 {
		t.Errorf("CountingReader N=%d meter=%d", cr.N, m.ReadBytes())
	}
}

func TestMemFSWriteAfterClose(t *testing.T) {
	fs := NewMemFS()
	w, _ := fs.Create("f")
	w.Close()
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Error("double close should be nil")
	}
}

func TestMemFSTotalBytes(t *testing.T) {
	fs := NewMemFS()
	w, _ := fs.Create("a")
	w.Write(make([]byte, 10))
	w.Close()
	w2, _ := fs.Create("b")
	w2.Write(make([]byte, 20))
	w2.Close()
	if got := fs.TotalBytes(); got != 30 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestFlakyFSPersistentFault(t *testing.T) {
	fs := &FlakyFS{Inner: NewMemFS(), FailWriteAt: 2}
	w, _ := fs.Create("f")
	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := w.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 should fail: %v", err)
	}
	// Persistent mode: every subsequent op keeps failing.
	if _, err := w.Write([]byte("c")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3 should still fail: %v", err)
	}
}

func TestFlakyFSFailOnce(t *testing.T) {
	fs := &FlakyFS{Inner: NewMemFS(), FailWriteAt: 2, FailOnce: true}
	w, _ := fs.Create("f")
	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := w.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 should fail: %v", err)
	}
	// Transient mode: exactly the Nth op fails; the retry succeeds.
	if _, err := w.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 should succeed after transient fault: %v", err)
	}
	w.Close()

	rfs := &FlakyFS{Inner: NewMemFS(), FailReadAt: 1, FailOnce: true}
	w2, _ := rfs.Create("g")
	w2.Write([]byte("data"))
	w2.Close()
	r, _ := rfs.Open("g")
	buf := make([]byte, 4)
	if _, err := r.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 1 should fail: %v", err)
	}
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("read 2 should succeed after transient fault: %v", err)
	}
	r.Close()
}
