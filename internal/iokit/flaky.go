package iokit

import (
	"errors"
	"io"
	"sync/atomic"
)

// ErrInjected is the failure FlakyFS injects.
var ErrInjected = errors.New("iokit: injected failure")

// FlakyFS wraps an FS and fails the Nth byte-level write or read
// operation (counting across all files), for fault-injection tests:
// spill, merge, shuffle, and Shared code paths must surface the error
// instead of corrupting results or panicking.
type FlakyFS struct {
	// Inner is the real filesystem.
	Inner FS
	// FailWriteAt fails the Nth write op (1-based; 0 disables).
	FailWriteAt int64
	// FailReadAt fails the Nth read op (1-based; 0 disables).
	FailReadAt int64
	// FailOnce makes each configured fault transient: exactly the Nth
	// op fails and later ops succeed, modelling a glitch a retry can
	// recover from. When false (the default) faults are persistent —
	// the Nth and every subsequent op fail.
	FailOnce bool

	writes atomic.Int64
	reads  atomic.Int64
}

// Create implements FS.
func (f *FlakyFS) Create(name string) (io.WriteCloser, error) {
	w, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &flakyWriter{fs: f, w: w}, nil
}

// Open implements FS.
func (f *FlakyFS) Open(name string) (io.ReadCloser, error) {
	r, err := f.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &flakyReader{fs: f, r: r}, nil
}

// Remove implements FS.
func (f *FlakyFS) Remove(name string) error { return f.Inner.Remove(name) }

// Size implements FS.
func (f *FlakyFS) Size(name string) (int64, error) { return f.Inner.Size(name) }

// List implements FS.
func (f *FlakyFS) List() ([]string, error) { return f.Inner.List() }

type flakyWriter struct {
	fs *FlakyFS
	w  io.WriteCloser
}

func (w *flakyWriter) Write(p []byte) (int, error) {
	n := w.fs.writes.Add(1)
	if w.fs.shouldFail(n, w.fs.FailWriteAt) {
		return 0, ErrInjected
	}
	return w.w.Write(p)
}

// shouldFail decides whether the nth op trips a fault configured at
// failAt.
func (f *FlakyFS) shouldFail(n, failAt int64) bool {
	if failAt <= 0 {
		return false
	}
	if f.FailOnce {
		return n == failAt
	}
	return n >= failAt
}

func (w *flakyWriter) Close() error { return w.w.Close() }

type flakyReader struct {
	fs *FlakyFS
	r  io.ReadCloser
}

func (r *flakyReader) Read(p []byte) (int, error) {
	n := r.fs.reads.Add(1)
	if r.fs.shouldFail(n, r.fs.FailReadAt) {
		return 0, ErrInjected
	}
	return r.r.Read(p)
}

func (r *flakyReader) Close() error { return r.r.Close() }
