// Package iokit abstracts the local filesystem used for map-side spills,
// map output segments, and the Shared structure's spill files, and meters
// every byte read and written so experiments can report Hadoop-style
// "total disk read/write" counters.
//
// Two implementations are provided: MemFS keeps files in memory (used by
// tests and benchmarks for speed and hermeticity) and OSFS stores files
// under a root directory.
package iokit

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrNotExist is returned when opening or removing a missing file.
var ErrNotExist = errors.New("iokit: file does not exist")

// FS is the minimal filesystem surface the engine needs.
type FS interface {
	// Create opens a new file for writing, truncating any existing file.
	Create(name string) (io.WriteCloser, error)
	// Open opens an existing file for reading.
	Open(name string) (io.ReadCloser, error)
	// Remove deletes a file.
	Remove(name string) error
	// Size reports the byte size of a file.
	Size(name string) (int64, error)
	// List returns the names of all files, sorted.
	List() ([]string, error)
}

// Meter aggregates I/O byte counts. Safe for concurrent use.
type Meter struct {
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	readOps    atomic.Int64
	writeOps   atomic.Int64
}

// AddRead records n bytes read.
func (m *Meter) AddRead(n int64) {
	m.readBytes.Add(n)
	m.readOps.Add(1)
}

// AddWrite records n bytes written.
func (m *Meter) AddWrite(n int64) {
	m.writeBytes.Add(n)
	m.writeOps.Add(1)
}

// ReadBytes reports total bytes read.
func (m *Meter) ReadBytes() int64 { return m.readBytes.Load() }

// WriteBytes reports total bytes written.
func (m *Meter) WriteBytes() int64 { return m.writeBytes.Load() }

// ReadOps reports the number of read calls.
func (m *Meter) ReadOps() int64 { return m.readOps.Load() }

// WriteOps reports the number of write calls.
func (m *Meter) WriteOps() int64 { return m.writeOps.Load() }

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.readBytes.Store(0)
	m.writeBytes.Store(0)
	m.readOps.Store(0)
	m.writeOps.Store(0)
}

// String renders the meter for logs.
func (m *Meter) String() string {
	return fmt.Sprintf("read=%dB(%d ops) write=%dB(%d ops)",
		m.ReadBytes(), m.ReadOps(), m.WriteBytes(), m.WriteOps())
}

// Labeled returns the meter as the snake_case metric map the obs
// metrics registry consumes, for registering a disk meter as its own
// live source.
func (m *Meter) Labeled() map[string]int64 {
	return map[string]int64{
		"disk_read_bytes":  m.ReadBytes(),
		"disk_write_bytes": m.WriteBytes(),
		"disk_read_ops":    m.ReadOps(),
		"disk_write_ops":   m.WriteOps(),
	}
}

// CountingWriter wraps a writer and feeds a meter.
type CountingWriter struct {
	W io.Writer
	M *Meter
	N int64
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	if c.M != nil {
		c.M.AddWrite(int64(n))
	}
	return n, err
}

// CountingReader wraps a reader and feeds a meter.
type CountingReader struct {
	R io.Reader
	M *Meter
	N int64
}

// Read implements io.Reader.
func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.N += int64(n)
	if c.M != nil {
		c.M.AddRead(int64(n))
	}
	return n, err
}

// RawFiler is implemented by opened files that can expose the raw
// operating-system file underneath. The shuffle data plane uses it to
// splice segment bytes straight to a socket (sendfile) instead of
// copying them through user space.
type RawFiler interface {
	RawFile() *os.File
}

// RawFile unwraps r to the underlying *os.File when the implementation
// exposes one (OSFS opened files do). Metered and tracked wrappers
// deliberately do not: bytes that bypass user space also bypass the
// wrapper, so zero-copy callers must meter by post-counting instead.
func RawFile(r io.Reader) (*os.File, bool) {
	switch f := r.(type) {
	case *os.File:
		return f, true
	case RawFiler:
		raw := f.RawFile()
		return raw, raw != nil
	}
	return nil, false
}

// Metered wraps fs so that every byte moving through Create/Open feeds m.
func Metered(fs FS, m *Meter) FS { return &meteredFS{fs: fs, m: m} }

type meteredFS struct {
	fs FS
	m  *Meter
}

func (f *meteredFS) Create(name string) (io.WriteCloser, error) {
	w, err := f.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &meteredWriter{CountingWriter{W: w, M: f.m}, w}, nil
}

func (f *meteredFS) Open(name string) (io.ReadCloser, error) {
	r, err := f.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &meteredReader{CountingReader{R: r, M: f.m}, r}, nil
}

func (f *meteredFS) Remove(name string) error        { return f.fs.Remove(name) }
func (f *meteredFS) Size(name string) (int64, error) { return f.fs.Size(name) }
func (f *meteredFS) List() ([]string, error)         { return f.fs.List() }

type meteredWriter struct {
	CountingWriter
	c io.Closer
}

func (w *meteredWriter) Close() error { return w.c.Close() }

type meteredReader struct {
	CountingReader
	c io.Closer
}

func (r *meteredReader) Close() error { return r.c.Close() }

// MemFS is an in-memory FS. The zero value is not usable; call NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

// Create implements FS.
func (m *MemFS) Create(name string) (io.WriteCloser, error) {
	return &memFile{fs: m, name: name}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	data, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return io.NopCloser(&sliceReader{data: data}), nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(m.files, name)
	return nil
}

// Size implements FS.
func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return int64(len(data)), nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// TotalBytes reports the sum of all file sizes (test helper).
func (m *MemFS) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, data := range m.files {
		total += int64(len(data))
	}
	return total
}

type memFile struct {
	fs   *MemFS
	name string
	buf  []byte
	done bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.done {
		return 0, errors.New("iokit: write after close")
	}
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *memFile) Close() error {
	if f.done {
		return nil
	}
	f.done = true
	f.fs.mu.Lock()
	f.fs.files[f.name] = f.buf
	f.fs.mu.Unlock()
	return nil
}

type sliceReader struct {
	data []byte
	pos  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// OSFS stores files under a root directory. File names may contain
// slashes; parent directories are created on demand.
type OSFS struct {
	root string
}

// NewOSFS returns an FS rooted at dir.
func NewOSFS(dir string) *OSFS { return &OSFS{root: dir} }

func (o *OSFS) path(name string) string { return filepath.Join(o.root, filepath.FromSlash(name)) }

// Create implements FS.
func (o *OSFS) Create(name string) (io.WriteCloser, error) {
	p := o.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	return os.Create(p)
}

// Open implements FS.
func (o *OSFS) Open(name string) (io.ReadCloser, error) {
	f, err := os.Open(o.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f, err
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	err := os.Remove(o.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return err
}

// Size implements FS.
func (o *OSFS) Size(name string) (int64, error) {
	info, err := os.Stat(o.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// List implements FS.
func (o *OSFS) List() ([]string, error) {
	var names []string
	err := filepath.Walk(o.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(o.root, path)
		if err != nil {
			return err
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}
