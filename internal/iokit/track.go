package iokit

import (
	"io"
	"sync/atomic"
)

// TrackFS wraps an FS and counts open handles, so fault-injection and
// chaos tests can assert that every code path — including error paths —
// closes every file it opened. Wrap it outermost (above any fault
// injector), so it counts exactly the handles the engine sees.
type TrackFS struct {
	// Inner is the real filesystem.
	Inner FS

	open atomic.Int64
}

// OpenHandles reports the number of currently open handles.
func (t *TrackFS) OpenHandles() int64 { return t.open.Load() }

// Create implements FS.
func (t *TrackFS) Create(name string) (io.WriteCloser, error) {
	w, err := t.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	t.open.Add(1)
	return &trackedHandle{fs: t, c: w, w: w}, nil
}

// Open implements FS.
func (t *TrackFS) Open(name string) (io.ReadCloser, error) {
	r, err := t.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	t.open.Add(1)
	return &trackedHandle{fs: t, c: r, r: r}, nil
}

// Remove implements FS.
func (t *TrackFS) Remove(name string) error { return t.Inner.Remove(name) }

// Size implements FS.
func (t *TrackFS) Size(name string) (int64, error) { return t.Inner.Size(name) }

// List implements FS.
func (t *TrackFS) List() ([]string, error) { return t.Inner.List() }

// trackedHandle decrements the open count on first Close only, so
// idempotent double closes do not drive the count negative.
type trackedHandle struct {
	fs     *TrackFS
	c      io.Closer
	w      io.Writer
	r      io.Reader
	closed bool
}

func (h *trackedHandle) Write(p []byte) (int, error) { return h.w.Write(p) }
func (h *trackedHandle) Read(p []byte) (int, error)  { return h.r.Read(p) }

func (h *trackedHandle) Close() error {
	if !h.closed {
		h.closed = true
		h.fs.open.Add(-1)
	}
	return h.c.Close()
}
