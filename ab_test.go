package repro

import (
	"testing"

	"repro/internal/experiments"
)

// abExperiments is the suite the map-path A/B harness replays under two
// engine configurations. CPUThreshold is deliberately absent: the
// Adaptive threshold rule (§7.6, Figure 7) measures real Map wall time
// to pick an encoding, so its record flows are time-dependent by design
// and not comparable run to run even within one configuration.
var abExperiments = map[string]func(experiments.Config) error{
	"Overhead":        func(c experiments.Config) error { _, err := experiments.Overhead(c); return err },
	"QSMapOutput":     func(c experiments.Config) error { _, err := experiments.QSMapOutput(c); return err },
	"QSCombiner":      func(c experiments.Config) error { _, err := experiments.QSCombiner(c); return err },
	"QSCompression":   func(c experiments.Config) error { _, err := experiments.QSCompression(c); return err },
	"QSCodecTable":    func(c experiments.Config) error { _, err := experiments.QSCodecTable(c); return err },
	"QSCostBreakdown": func(c experiments.Config) error { _, err := experiments.QSCostBreakdown(c); return err },
	"WordCount":       func(c experiments.Config) error { _, err := experiments.WordCount(c); return err },
	"PageRank":        func(c experiments.Config) error { _, err := experiments.PageRank(c); return err },
	"ThetaJoin":       func(c experiments.Config) error { _, err := experiments.ThetaJoin(c); return err },
	"ScanShare":       func(c experiments.Config) error { _, err := experiments.ScanShare(c); return err },
	"CrossCall":       func(c experiments.Config) error { _, err := experiments.CrossCall(c); return err },
	"Skew":            func(c experiments.Config) error { _, err := experiments.Skew(c); return err },
}

// TestMapPathExperimentDigests is the repository-level A/B proof for
// the map-path overhaul: the full experiment suite, run once under the
// historical engine configuration (sequential spills, pooling off) and
// once under the overhauled default (bucketed sort, pooled buffers,
// parallel spill/merge), must record identical per-job output digests —
// output records, logical counters, and per-partition shuffle flows all
// byte-for-byte equal.
func TestMapPathExperimentDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment suite twice")
	}
	run := func(sequential bool) map[string]map[string][]string {
		out := make(map[string]map[string][]string)
		for name, fn := range abExperiments {
			cfg := experiments.Config{Scale: 0.05, Reducers: 4, Splits: 4}
			cfg.Digests = experiments.NewOutputDigests()
			if sequential {
				cfg.SpillParallelism = 1
				cfg.DisablePooling = true
			}
			if err := fn(cfg); err != nil {
				t.Fatalf("%s (sequential=%v): %v", name, sequential, err)
			}
			out[name] = cfg.Digests.Snapshot()
		}
		return out
	}
	base := run(true)
	fast := run(false)

	for name, baseJobs := range base {
		fastJobs := fast[name]
		if len(baseJobs) == 0 {
			t.Errorf("%s: recorded no digests — experiment bypasses the instrumented job runner", name)
			continue
		}
		for job, baseSums := range baseJobs {
			fastSums, ok := fastJobs[job]
			if !ok {
				t.Errorf("%s: job %q ran under the sequential engine only", name, job)
				continue
			}
			if len(baseSums) != len(fastSums) {
				t.Errorf("%s: job %q ran %d times sequential, %d times parallel",
					name, job, len(baseSums), len(fastSums))
				continue
			}
			for i := range baseSums {
				if baseSums[i] != fastSums[i] {
					t.Errorf("%s: job %q run %d digest differs:\nsequential %s\nparallel   %s",
						name, job, i, baseSums[i], fastSums[i])
				}
			}
		}
		for job := range fastJobs {
			if _, ok := baseJobs[job]; !ok {
				t.Errorf("%s: job %q ran under the parallel engine only", name, job)
			}
		}
	}
}
